#include "analysis/metrics.h"

#include <gtest/gtest.h>

namespace instameasure::analysis {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, ~n, 5, 6, 6};
}

/// Ground truth with flows of exactly the given packet sizes.
GroundTruth make_truth(const std::vector<std::uint64_t>& sizes) {
  trace::Trace trace;
  for (std::uint32_t f = 0; f < sizes.size(); ++f) {
    for (std::uint64_t p = 0; p < sizes[f]; ++p) {
      trace.packets.push_back({p, key_n(f), 100});
    }
  }
  return GroundTruth{trace};
}

TEST(BandedErrors, PerfectEstimatorHasZeroError) {
  const auto truth = make_truth({50, 500, 5000});
  const auto bands = banded_errors(
      truth,
      [&](const netio::FlowKey& key) {
        return static_cast<double>(truth.find(key)->packets);
      },
      {10, 100, 1000}, false);
  ASSERT_EQ(bands.size(), 3u);
  for (const auto& band : bands) {
    EXPECT_EQ(band.flows, 1u);
    EXPECT_DOUBLE_EQ(band.mean_abs_rel_error, 0.0);
    EXPECT_DOUBLE_EQ(band.mean_rel_bias, 0.0);
  }
}

TEST(BandedErrors, FlowsLandInHighestReachedBand) {
  const auto truth = make_truth({5, 50, 500, 5000});
  const auto bands = banded_errors(
      truth, [](const netio::FlowKey&) { return 0.0; }, {10, 100, 1000},
      false);
  // The 5-packet flow is below every band; the rest land one per band.
  EXPECT_EQ(bands[0].min_size, 10u);
  EXPECT_EQ(bands[0].flows, 1u);
  EXPECT_EQ(bands[1].flows, 1u);
  EXPECT_EQ(bands[2].flows, 1u);
}

TEST(BandedErrors, KnownBias) {
  const auto truth = make_truth({100, 200});
  const auto bands = banded_errors(
      truth,
      [&](const netio::FlowKey& key) {
        return static_cast<double>(truth.find(key)->packets) * 1.10;
      },
      {10}, false);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands[0].flows, 2u);
  EXPECT_NEAR(bands[0].mean_abs_rel_error, 0.10, 1e-9);
  EXPECT_NEAR(bands[0].mean_rel_bias, 0.10, 1e-9);
  EXPECT_NEAR(bands[0].std_error, 0.0, 1e-9) << "constant bias, no spread";
}

TEST(BandedErrors, ByBytesUsesByteSizes) {
  // One flow with 50 packets x 100B = 5000B.
  const auto truth = make_truth({50});
  const auto bands = banded_errors(
      truth, [](const netio::FlowKey&) { return 5000.0; }, {1000}, true);
  ASSERT_EQ(bands.size(), 1u);
  EXPECT_EQ(bands[0].flows, 1u);
  EXPECT_DOUBLE_EQ(bands[0].mean_abs_rel_error, 0.0);
}

TEST(TopKRecall, PerfectAndPartial) {
  std::vector<netio::FlowKey> truth_top{key_n(1), key_n(2), key_n(3),
                                        key_n(4)};
  EXPECT_DOUBLE_EQ(top_k_recall(truth_top, truth_top), 1.0);
  std::vector<netio::FlowKey> half{key_n(1), key_n(2), key_n(9), key_n(10)};
  EXPECT_DOUBLE_EQ(top_k_recall(truth_top, half), 0.5);
  EXPECT_DOUBLE_EQ(top_k_recall(truth_top, {}), 0.0);
  EXPECT_DOUBLE_EQ(top_k_recall({}, half), 1.0) << "vacuous truth";
}

TEST(HhAccuracy, PerfectDetection) {
  const auto truth = make_truth({10, 2000, 3000});
  const auto acc = heavy_hitter_accuracy(truth, {key_n(1), key_n(2)}, 1000,
                                         false);
  EXPECT_EQ(acc.true_positives, 2u);
  EXPECT_EQ(acc.false_positives, 0u);
  EXPECT_EQ(acc.false_negatives, 0u);
  EXPECT_DOUBLE_EQ(acc.fp_rate(), 0.0);
  EXPECT_DOUBLE_EQ(acc.fn_rate(), 0.0);
}

TEST(HhAccuracy, FalsePositiveCounted) {
  const auto truth = make_truth({10, 2000});
  const auto acc =
      heavy_hitter_accuracy(truth, {key_n(0), key_n(1)}, 1000, false);
  EXPECT_EQ(acc.true_positives, 1u);
  EXPECT_EQ(acc.false_positives, 1u);
  EXPECT_DOUBLE_EQ(acc.fp_rate(), 0.5);
}

TEST(HhAccuracy, FalseNegativeCounted) {
  const auto truth = make_truth({2000, 3000});
  const auto acc = heavy_hitter_accuracy(truth, {key_n(0)}, 1000, false);
  EXPECT_EQ(acc.false_negatives, 1u);
  EXPECT_DOUBLE_EQ(acc.fn_rate(), 0.5);
}

TEST(HhAccuracy, DetectionOfUnknownKeyIsFalsePositive) {
  const auto truth = make_truth({2000});
  const auto acc = heavy_hitter_accuracy(truth, {key_n(0), key_n(42)}, 1000,
                                         false);
  EXPECT_EQ(acc.true_positives, 1u);
  EXPECT_EQ(acc.false_positives, 1u);
}

TEST(HhAccuracy, EmptyEverything) {
  const auto truth = make_truth({});
  const auto acc = heavy_hitter_accuracy(truth, {}, 1000, false);
  EXPECT_DOUBLE_EQ(acc.fp_rate(), 0.0);
  EXPECT_DOUBLE_EQ(acc.fn_rate(), 0.0);
}

}  // namespace
}  // namespace instameasure::analysis
