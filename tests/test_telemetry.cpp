#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/instameasure.h"
#include "delegation/pipeline.h"
#include "memmodel/memory_model.h"
#include "runtime/multicore.h"
#include "telemetry/export.h"
#include "telemetry/reporter.h"
#include "trace/generator.h"
#include "util/format.h"
#include "util/rng.h"

namespace instameasure::telemetry {
namespace {

// The whole suite must pass in both build flavors: with telemetry enabled
// (cells live, exporters render) and compiled out (every hook a no-op that
// reads as zero). kEnabled-guarded expectations encode both contracts.

TEST(Counter, StandaloneHandleCounts) {
  Counter c;
  c.inc();
  c.inc(41);
  if constexpr (kEnabled) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);
  }
}

TEST(Counter, PerThreadHandlesAggregateInRegistry) {
  Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      // Each writer takes its OWN cell — the single-writer contract that
      // makes inc() a plain add. The registry sums them at read time.
      auto handle = registry.counter("test_ops_total", "ops");
      for (std::uint64_t i = 0; i < kPerThread; ++i) handle.inc();
    });
  }
  for (auto& t : threads) t.join();
  if constexpr (kEnabled) {
    EXPECT_EQ(registry.value("test_ops_total"), kThreads * kPerThread);
  } else {
    EXPECT_EQ(registry.value("test_ops_total"), 0.0);
  }
}

TEST(Counter, LabelFilterSelectsSeries) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto a = registry.counter("test_pkts_total", "", {{"worker", "0"}});
  auto b = registry.counter("test_pkts_total", "", {{"worker", "1"}});
  a.inc(5);
  b.inc(7);
  EXPECT_EQ(registry.value("test_pkts_total"), 12.0);
  EXPECT_EQ(registry.value("test_pkts_total", {{"worker", "0"}}), 5.0);
  EXPECT_EQ(registry.value("test_pkts_total", {{"worker", "1"}}), 7.0);
  EXPECT_EQ(registry.value("test_pkts_total", {{"worker", "9"}}), 0.0);
}

TEST(Gauge, SameSeriesSharesOneCell) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto a = registry.gauge("test_ratio");
  auto b = registry.gauge("test_ratio");
  a.set(0.25);
  b.set(0.5);  // same cell: last write wins, never a sum
  EXPECT_DOUBLE_EQ(registry.value("test_ratio"), 0.5);
  EXPECT_DOUBLE_EQ(a.value(), 0.5);
}

TEST(HistogramMetric, PercentilesTrackExactQuantiles) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  // Log-normal-ish latency distribution spanning several octaves; the
  // log-scale buckets (8 per octave) bound relative error at 12.5%, and
  // the midpoint estimate halves that.
  util::Xoshiro256ss rng{7};
  Histogram h;
  std::vector<std::uint64_t> values;
  for (int i = 0; i < 50'000; ++i) {
    const double u = rng.next_double();
    const auto v =
        static_cast<std::uint64_t>(std::exp(4.0 + 6.0 * u));  // ~55..1.2M
    values.push_back(v);
    h.record(v);
  }
  std::sort(values.begin(), values.end());
  EXPECT_EQ(h.count(), values.size());
  EXPECT_EQ(h.max_value(), values.back());
  for (const double q : {0.5, 0.9, 0.99}) {
    const auto exact = static_cast<double>(
        values[static_cast<std::size_t>(q * (values.size() - 1))]);
    EXPECT_NEAR(h.quantile(q) / exact, 1.0, 0.13)
        << "q=" << q << " exact=" << exact << " est=" << h.quantile(q);
  }
}

TEST(HistogramMetric, SmallValuesAreExact) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Histogram h;
  for (std::uint64_t v = 0; v < 8; ++v) h.record(v);
  // Values below one sub-bucket block land in unit-wide buckets.
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
  EXPECT_EQ(h.max_value(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 28.0);
}

TEST(Export, PrometheusTextFormat) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto c = registry.counter("test_requests_total", "Requests served",
                            {{"code", "200"}});
  c.inc(3);
  auto g = registry.gauge("test_temp", "Temperature");
  g.set(1.5);
  auto h = registry.histogram("test_latency_ns", "Latency");
  h.record(10);
  h.record(1000);

  const auto text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# HELP test_requests_total Requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_requests_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_requests_total{code=\"200\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE test_temp gauge\n"), std::string::npos);
  EXPECT_NE(text.find("test_temp 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_latency_ns histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_ns_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("test_latency_ns_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("test_latency_ns_sum 1010\n"), std::string::npos);
}

TEST(Export, PrometheusBucketsAreCumulative) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto h = registry.histogram("test_h");
  for (std::uint64_t v : {1, 1, 100, 10'000}) h.record(v);
  const auto text = to_prometheus(registry.snapshot());
  // Parse every bucket count; the sequence must be non-decreasing and end
  // at the total count.
  std::vector<double> counts;
  std::size_t pos = 0;
  while ((pos = text.find("test_h_bucket{le=", pos)) != std::string::npos) {
    const auto space = text.find("} ", pos);
    const auto nl = text.find('\n', space);
    counts.push_back(std::stod(text.substr(space + 2, nl - space - 2)));
    pos = nl;
  }
  ASSERT_GE(counts.size(), 2u);
  EXPECT_TRUE(std::is_sorted(counts.begin(), counts.end()));
  EXPECT_DOUBLE_EQ(counts.back(), 4.0);
}

TEST(Export, JsonCarriesValuesAndPercentiles) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto c = registry.counter("test_total", "", {{"k", "v"}});
  c.inc(9);
  auto h = registry.histogram("test_ns");
  for (int i = 1; i <= 100; ++i) h.record(static_cast<std::uint64_t>(i));
  const auto json = to_json(registry.snapshot());
  EXPECT_NE(json.find("\"name\":\"test_total\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"k\":\"v\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":9"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_NE(json.find("\"max\":100"), std::string::npos);
}

// escaped() must neutralize every JSON-breaking byte a label can carry:
// quotes, backslashes, and all control chars (newlines/tabs as their
// two-char escapes, the rest as \uXXXX). A label value is attacker-ish
// input — flow keys and CLI strings end up in labels — so the exporter
// output must stay machine-parseable for any byte sequence.
TEST(Export, EscapesControlCharactersInLabels) {
  const std::string hostile = "a\"b\\c\nd\te\rf\x01g";
  EXPECT_EQ(util::json_escape(hostile),
            "a\\\"b\\\\c\\nd\\te\\rf\\u0001g");
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto c = registry.counter("test_hostile_total", "", {{"k", hostile}});
  c.inc(1);
  const auto json = to_json(registry.snapshot());
  EXPECT_NE(json.find("a\\\"b\\\\c\\nd\\te\\rf\\u0001g"),
            std::string::npos);
  const auto prom = to_prometheus(registry.snapshot());
  for (const auto& text : {json, prom}) {
    for (const char ch : text) {
      // No raw control byte may survive into either exporter's output
      // (structural newlines are the format's own, not the label's).
      if (ch == '\n') continue;
      EXPECT_GE(static_cast<unsigned char>(ch), 0x20u);
    }
  }
}

TEST(Export, SnapshotFindFiltersByLabel) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  auto a = registry.counter("test_x", "", {{"w", "0"}});
  auto b = registry.counter("test_x", "", {{"w", "1"}});
  a.inc(1);
  b.inc(2);
  const auto snapshot = registry.snapshot();
  const auto* s = snapshot.find("test_x", {{"w", "1"}});
  ASSERT_NE(s, nullptr);
  EXPECT_DOUBLE_EQ(s->value, 2.0);
  EXPECT_EQ(snapshot.find("test_x", {{"w", "5"}}), nullptr);
}

TEST(Reporter, PeriodicAndFinalSnapshots) {
  Registry registry;
  auto c = registry.counter("test_ticks_total");
  c.inc(3);
  std::ostringstream out;
  ReporterConfig config;
  config.interval = std::chrono::milliseconds{20};
  config.stream = &out;
  SnapshotReporter reporter{registry, config};
  reporter.start();
  std::this_thread::sleep_for(std::chrono::milliseconds{70});
  reporter.stop();
  if constexpr (kEnabled) {
    EXPECT_GE(reporter.snapshots_written(), 2u);  // >=1 tick + final
    EXPECT_NE(out.str().find("test_ticks_total"), std::string::npos);
  } else {
    EXPECT_EQ(reporter.snapshots_written(), 0u);
    EXPECT_TRUE(out.str().empty());
  }
}

TEST(Reporter, StopReturnsPromptlyDespiteLongInterval) {
  // Shutdown latency contract: stop() wakes the tick thread via the
  // condition variable instead of waiting out the interval, so stopping a
  // 10-second reporter is instant. (A sleep_for-based loop would pin this
  // test at ~10 s.)
  Registry registry;
  std::ostringstream out;
  ReporterConfig config;
  config.interval = std::chrono::seconds{10};
  config.stream = &out;
  SnapshotReporter reporter{registry, config};
  reporter.start();
  std::this_thread::sleep_for(std::chrono::milliseconds{20});

  const auto t0 = std::chrono::steady_clock::now();
  reporter.stop();
  const auto stop_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(stop_ms, 100.0) << "stop() must not wait out the 10 s interval";
  if constexpr (kEnabled) {
    EXPECT_GE(reporter.snapshots_written(), 1u) << "final snapshot on stop";
  }

  // Concurrent stop() calls (e.g. explicit stop racing the destructor's)
  // must not double-join the tick thread.
  reporter.start();
  std::thread racer{[&] { reporter.stop(); }};
  reporter.stop();
  racer.join();
}

TEST(Reporter, TextfilePublishIsAtomicUnderConcurrentReads) {
  // Regression for the in-place ios::trunc textfile write: a reader
  // opening the path mid-write saw a truncated (often empty) file. The
  // reporter now writes <path>.tmp and std::rename()s it over the target,
  // so every open() observes a complete snapshot. A reader thread hammers
  // the path while the reporter ticks at 1 ms; any short read fails the
  // test. (Pre-fix this catches a torn read within a few hundred opens.)
  namespace fs = std::filesystem;
  const auto path =
      fs::temp_directory_path() / "im_test_reporter_atomic.prom";
  std::error_code ec;
  fs::remove(path, ec);
  fs::remove(path.string() + ".tmp", ec);

  Registry registry;
  auto c = registry.counter("test_atomic_ticks_total");
  // A fat payload widens the write window: many series, long help text.
  std::vector<Gauge> gauges;
  for (int i = 0; i < 64; ++i) {
    gauges.push_back(registry.gauge(
        "test_atomic_padding_" + std::to_string(i),
        "padding series so the snapshot spans several kilobytes",
        {{"idx", std::to_string(i)}}));
    gauges.back().set(i);
  }

  ReporterConfig config;
  config.interval = std::chrono::milliseconds{1};
  config.path = path.string();
  SnapshotReporter reporter{registry, config};

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::atomic<std::uint64_t> torn{0};
  std::size_t full_size = 0;
  {
    // One synchronous write tells us the complete-snapshot size.
    reporter.write_now();
    std::ifstream in{path, std::ios::binary | std::ios::ate};
    if (in) full_size = static_cast<std::size_t>(in.tellg());
  }
  std::thread reader{[&] {
    while (!done.load(std::memory_order_relaxed)) {
      std::ifstream in{path, std::ios::binary | std::ios::ate};
      if (!in) continue;  // rename window on some filesystems; not a tear
      const auto size = static_cast<std::size_t>(in.tellg());
      ++reads;
      // Counter value growth only ever lengthens the file; any read
      // shorter than the first complete snapshot is a torn write.
      if (size < full_size) ++torn;
    }
  }};

  reporter.start();
  for (int i = 0; i < 200; ++i) {
    c.inc();
    std::this_thread::sleep_for(std::chrono::microseconds{200});
  }
  reporter.stop();
  done = true;
  reader.join();

  if constexpr (kEnabled) {
    EXPECT_GE(reporter.snapshots_written(), 2u);
    EXPECT_GT(reads.load(), 0u);
    EXPECT_EQ(torn.load(), 0u)
        << "reader observed a truncated snapshot (non-atomic publish)";
    EXPECT_FALSE(fs::exists(path.string() + ".tmp"))
        << "tmp file must not survive a successful publish";
  }
  fs::remove(path, ec);
  fs::remove(path.string() + ".tmp", ec);
}

TEST(Integration, EngineMirrorsMatchAuthoritativeCounts) {
  Registry registry;
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 14;
  config.registry = &registry;
  core::InstaMeasure engine{config};

  const netio::FlowKey key{0x0a000001, 0x0a000002, 1234, 443, 6};
  constexpr int kPackets = 150'000;
  for (int i = 0; i < kPackets; ++i) {
    engine.process(
        netio::PacketRecord{static_cast<std::uint64_t>(i) * 1000, key, 500});
  }

  if constexpr (kEnabled) {
    // The registry mirrors the plain member counters exactly.
    EXPECT_EQ(registry.value("im_regulator_packets_total"),
              static_cast<double>(engine.regulator().packets()));
    EXPECT_EQ(registry.value("im_regulator_l2_saturations_total"),
              static_cast<double>(engine.regulator().l2_saturations()));
    EXPECT_EQ(registry.value("im_wsaf_inserts_total"),
              static_cast<double>(engine.wsaf().stats().inserts));
    EXPECT_EQ(registry.value("im_wsaf_occupancy"),
              static_cast<double>(engine.wsaf().occupancy()));
    // Live ips/pps gauge equals the regulator's regulation rate (updated
    // on the event path; an elephant of this size saturates many times).
    EXPECT_GT(engine.regulator().l2_saturations(), 0u);
    EXPECT_NEAR(registry.value("im_engine_ips_pps_ratio"),
                engine.regulator().regulation_rate(),
                1e-3);  // gauge lags by the packets since the last event
    // Sampled per-packet timing populated the process histogram.
    const auto snapshot = registry.snapshot();
    const auto* process = snapshot.find("im_engine_process_ns");
    ASSERT_NE(process, nullptr);
    ASSERT_TRUE(process->histogram.has_value());
    EXPECT_GE(process->histogram->count, kPackets / 256 / 2);
  } else {
    EXPECT_EQ(registry.value("im_regulator_packets_total"), 0.0);
  }
  // The authoritative plain counters work in BOTH builds.
  EXPECT_EQ(engine.regulator().packets(), static_cast<std::uint64_t>(kPackets));
}

TEST(Integration, DetectionLatencyHistogramPopulated) {
  Registry registry;
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 14;
  config.heavy_hitter.packet_threshold = 200;
  config.registry = &registry;
  core::InstaMeasure engine{config};

  const netio::FlowKey key{0xc0a80001, 0xc0a80002, 4321, 80, 17};
  for (int i = 0; i < 100'000; ++i) {
    engine.process(
        netio::PacketRecord{static_cast<std::uint64_t>(i) * 1000, key, 500});
  }
  ASSERT_FALSE(engine.detections().empty());
  if constexpr (kEnabled) {
    EXPECT_EQ(registry.value("im_engine_detections_total"),
              static_cast<double>(engine.detections().size()));
    const auto snapshot = registry.snapshot();
    const auto* lat = snapshot.find("im_engine_detection_latency_ns");
    ASSERT_NE(lat, nullptr);
    ASSERT_TRUE(lat->histogram.has_value());
    EXPECT_EQ(lat->histogram->count, engine.detections().size());
    EXPECT_GT(lat->histogram->quantile(0.5), 0.0);
  }
}

TEST(Integration, MultiCoreStatsAgreeWithRegistry) {
  const auto trace = trace::generate([] {
    trace::TraceConfig config;
    config.duration_s = 0.2;
    config.mice = {2'000, 1.1, 30};
    config.seed = 99;
    return config;
  }());

  runtime::MultiCoreConfig config;
  config.workers = 2;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 14;
  runtime::MultiCoreEngine engine{config};
  const auto stats = engine.run(trace);

  // RunStats is derived from the registry when telemetry is on and from
  // local tallies when it is off — either way the totals must balance.
  std::uint64_t total = 0;
  for (const auto p : stats.per_worker_packets) total += p;
  EXPECT_EQ(total, trace.packets.size());

  if constexpr (kEnabled) {
    auto& registry = engine.registry();
    EXPECT_EQ(registry.value("im_runtime_worker_packets_total"),
              static_cast<double>(trace.packets.size()));
    for (unsigned w = 0; w < engine.workers(); ++w) {
      const Labels filter{{"worker", std::to_string(w)}};
      EXPECT_EQ(registry.value("im_runtime_worker_packets_total", filter),
                static_cast<double>(stats.per_worker_packets[w]));
      // Every worker's engine exported under its own label too.
      EXPECT_EQ(registry.value("im_regulator_packets_total", filter),
                static_cast<double>(stats.per_worker_packets[w]));
    }
    EXPECT_EQ(registry.value("im_runtime_runs_total"), 1.0);
    EXPECT_NEAR(registry.value("im_runtime_mpps"), stats.mpps, 1e-9);
  }
}

TEST(Integration, DelegationPipelineExportsChannelTraffic) {
  Registry registry;
  const auto trace = trace::generate([] {
    trace::TraceConfig config;
    config.duration_s = 0.5;
    config.mice = {500, 1.1, 40};
    config.seed = 5;
    return config;
  }());

  delegation::PipelineConfig config;
  config.epoch_ms = 50.0;
  config.packet_threshold = 10;
  config.registry = &registry;
  std::vector<netio::FlowKey> watched{trace.packets.front().key};
  const auto run = delegation::run_pipeline(trace.packets, config, watched);

  EXPECT_GT(run.epochs, 0u);
  if constexpr (kEnabled) {
    EXPECT_EQ(registry.value("im_delegation_epochs_total"),
              static_cast<double>(run.epochs));
    EXPECT_EQ(registry.value("im_delegation_sketches_received_total"),
              static_cast<double>(run.sketches_delivered));
    // Every flush ships the whole sketch.
    const sketch::CountMinSketch probe{config.sketch};
    EXPECT_EQ(registry.value("im_delegation_channel_bytes_total"),
              static_cast<double>(run.epochs * probe.memory_bytes()));
    const auto snapshot = registry.snapshot();
    const auto* decode = snapshot.find("im_delegation_collector_decode_ns");
    ASSERT_NE(decode, nullptr);
    ASSERT_TRUE(decode->histogram.has_value());
    EXPECT_EQ(decode->histogram->count, run.sketches_delivered);
  }
}

TEST(Integration, MemoryModelPublishesFeasibilityEnvelope) {
  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  Registry registry;
  memmodel::WsafBudget budget;
  memmodel::publish(budget, registry, 10e6);
  EXPECT_DOUBLE_EQ(registry.value("im_memmodel_max_ips", {{"memory", "DRAM"}}),
                   budget.max_ips(memmodel::MemoryKind::kDram));
  EXPECT_DOUBLE_EQ(
      registry.value("im_memmodel_max_regulation_rate", {{"memory", "SRAM"}}),
      budget.max_regulation_rate(memmodel::MemoryKind::kSram, 10e6));
}

TEST(Integration, BatchPathKeepsTelemetryLockstep) {
  // Regression for the batched hot path: reusing precomputed hashes through
  // the regulator and WSAF must not double-count anything. Every counter,
  // the probe-length histogram (count AND sum — the batch path walks the
  // exact same probe sequences), the sampled process_ns count (lockstep
  // sampling), and the logical memory accounting must match the scalar
  // engine exactly; only timing-valued sums may differ.
  trace::TraceConfig tconfig;
  tconfig.duration_s = 1.0;
  tconfig.tiers = {{3, 15'000, 30'000}, {25, 1'000, 4'000}};
  tconfig.mice = {8'000, 1.1, 40};
  tconfig.seed = 99;
  const auto trace = trace::generate(tconfig);

  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 14;
  config.heavy_hitter.packet_threshold = 5'000;
  config.track_top_k = 5;

  Registry scalar_reg, batch_reg;
  auto scalar_config = config;
  scalar_config.registry = &scalar_reg;
  auto batch_config = config;
  batch_config.registry = &batch_reg;
  core::InstaMeasure scalar{scalar_config};
  core::InstaMeasure batch{batch_config};

  for (const auto& rec : trace.packets) scalar.process(rec);
  const std::span<const netio::PacketRecord> all{trace.packets};
  for (std::size_t off = 0; off < all.size(); off += 48) {
    batch.process_batch(
        all.subspan(off, std::min<std::size_t>(48, all.size() - off)));
  }

  EXPECT_EQ(scalar.wsaf().logical_memory_bytes(),
            batch.wsaf().logical_memory_bytes());
  EXPECT_EQ(core::WsafTable::logical_entry_bytes(), 33u);

  if constexpr (!kEnabled) GTEST_SKIP() << "telemetry compiled out";
  for (const char* name :
       {"im_regulator_packets_total", "im_regulator_l1_saturations_total",
        "im_regulator_l2_saturations_total", "im_wsaf_accumulates_total",
        "im_wsaf_inserts_total", "im_wsaf_updates_total",
        "im_wsaf_evictions_total", "im_wsaf_rejected_total",
        "im_wsaf_gc_reclaims_total", "im_wsaf_occupancy",
        "im_engine_detections_total", "im_engine_reported_flows"}) {
    EXPECT_DOUBLE_EQ(scalar_reg.value(name), batch_reg.value(name)) << name;
  }

  const auto ss = scalar_reg.snapshot();
  const auto bs = batch_reg.snapshot();
  const auto histogram_of = [](const Snapshot& snap, const char* name) {
    const auto* sample = snap.find(name);
    EXPECT_NE(sample, nullptr) << name;
    EXPECT_TRUE(sample == nullptr || sample->histogram.has_value()) << name;
    return sample != nullptr && sample->histogram.has_value()
               ? &*sample->histogram
               : nullptr;
  };
  const auto* probe_s = histogram_of(ss, "im_wsaf_probe_length");
  const auto* probe_b = histogram_of(bs, "im_wsaf_probe_length");
  ASSERT_NE(probe_s, nullptr);
  ASSERT_NE(probe_b, nullptr);
  EXPECT_GT(probe_s->count, 0u);
  EXPECT_EQ(probe_s->count, probe_b->count);
  EXPECT_DOUBLE_EQ(probe_s->sum, probe_b->sum);

  // Timing histograms: sample COUNTS are part of the lockstep contract;
  // the recorded values are wall-clock and legitimately differ.
  for (const char* name :
       {"im_engine_process_ns", "im_engine_event_accumulate_ns",
        "im_engine_detection_latency_ns"}) {
    const auto* hist_s = histogram_of(ss, name);
    const auto* hist_b = histogram_of(bs, name);
    ASSERT_NE(hist_s, nullptr) << name;
    ASSERT_NE(hist_b, nullptr) << name;
    EXPECT_EQ(hist_s->count, hist_b->count) << name;
  }
  // Detection latency is trace-clock, not wall-clock: identical sums too.
  const auto* lat_s = histogram_of(ss, "im_engine_detection_latency_ns");
  const auto* lat_b = histogram_of(bs, "im_engine_detection_latency_ns");
  EXPECT_GT(lat_s->count, 0u);
  EXPECT_DOUBLE_EQ(lat_s->sum, lat_b->sum);
}

TEST(Integration, ClearDetectionsBoundsReportedSets) {
  // Satellite fix: reported_pkt_/reported_byte_ must not grow without
  // bound — clear_detections() empties them and rewinds the gauge.
  Registry registry;
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 14;
  config.heavy_hitter.packet_threshold = 200;
  config.registry = &registry;
  core::InstaMeasure engine{config};
  const netio::FlowKey key{0xde000001, 0xde000002, 1, 2, 6};
  for (int i = 0; i < 50'000; ++i) {
    engine.process(
        netio::PacketRecord{static_cast<std::uint64_t>(i) * 1000, key, 500});
  }
  ASSERT_GT(engine.reported_flows(), 0u);
  engine.clear_detections();
  EXPECT_EQ(engine.reported_flows(), 0u);
  EXPECT_TRUE(engine.detections().empty());
  if constexpr (kEnabled) {
    EXPECT_EQ(registry.value("im_engine_reported_flows"), 0.0);
    // Counters are monotone across the clear (Prometheus semantics).
    EXPECT_GT(registry.value("im_engine_detections_total"), 0.0);
  }
}

}  // namespace
}  // namespace instameasure::telemetry
