#include <gtest/gtest.h>

#include "sketch/bloom.h"
#include "sketch/countmin.h"
#include "sketch/csm.h"
#include "sketch/spacesaving.h"
#include "util/rng.h"

namespace instameasure::sketch {
namespace {

// ---------- Count-Min ----------

TEST(CountMin, NeverUnderestimates) {
  CountMinSketch cm{CountMinConfig{1 << 10, 4, 1}};
  util::SplitMix64 keys{3};
  std::vector<std::pair<std::uint64_t, std::uint64_t>> flows;
  for (int f = 0; f < 200; ++f) {
    const auto key = keys();
    const std::uint64_t count = 1 + (key % 50);
    for (std::uint64_t i = 0; i < count; ++i) cm.add(key);
    flows.emplace_back(key, count);
  }
  for (const auto& [key, count] : flows) {
    EXPECT_GE(cm.query(key), count);
  }
}

TEST(CountMin, ExactWhenUncontended) {
  CountMinSketch cm{CountMinConfig{1 << 16, 4, 2}};
  cm.add(42, 17);
  EXPECT_EQ(cm.query(42), 17u);
  EXPECT_EQ(cm.query(43), 0u);
}

TEST(CountMin, MergeEqualsCombinedStream) {
  const CountMinConfig config{1 << 12, 4, 9};
  CountMinSketch a{config}, b{config}, combined{config};
  for (std::uint64_t k = 0; k < 100; ++k) {
    a.add(k, k + 1);
    combined.add(k, k + 1);
  }
  for (std::uint64_t k = 50; k < 150; ++k) {
    b.add(k, 2);
    combined.add(k, 2);
  }
  a.merge(b);
  EXPECT_EQ(a.total(), combined.total());
  for (std::uint64_t k = 0; k < 150; ++k) {
    EXPECT_EQ(a.query(k), combined.query(k));
  }
}

TEST(CountMin, ResetZeroes) {
  CountMinSketch cm{CountMinConfig{1 << 8, 2, 5}};
  cm.add(7, 100);
  cm.reset();
  EXPECT_EQ(cm.query(7), 0u);
  EXPECT_EQ(cm.total(), 0u);
}

// ---------- CSM ----------

TEST(Csm, EstimatesLargeFlowsAccurately) {
  CsmSketch csm{CsmConfig{1 << 20, 16, 4}};
  util::SplitMix64 keys{8};
  // Background: 200k packets over 20k mice flows.
  for (int f = 0; f < 20'000; ++f) {
    const auto key = keys();
    for (int i = 0; i < 10; ++i) csm.add(key);
  }
  // Elephant: 100k packets.
  const std::uint64_t elephant = 0xE1E1E1;
  for (int i = 0; i < 100'000; ++i) csm.add(elephant);
  const double est = csm.estimate(elephant);
  EXPECT_NEAR(est / 100'000.0, 1.0, 0.1);
}

TEST(Csm, SmallFlowsAreNoisy) {
  // The paper's point: CSM needs the *global* total for decode, and small
  // flows drown in shared-counter noise. A 10-packet flow under heavy
  // background traffic decodes with large absolute noise bounds.
  CsmSketch csm{CsmConfig{1 << 14, 16, 5}};
  util::SplitMix64 keys{9};
  for (int f = 0; f < 50'000; ++f) csm.add(keys());
  const std::uint64_t small = 0x5A5A;
  for (int i = 0; i < 10; ++i) csm.add(small);
  // Estimate exists but we only assert it is non-negative and bounded by
  // the noise envelope (l * total / m * few sigma), not accurate.
  const double est = csm.estimate(small);
  EXPECT_GE(est, 0.0);
  EXPECT_LT(est, 2000.0);
}

TEST(Csm, DecodeTouchesPerFlowCounters) {
  CsmSketch csm{CsmConfig{1 << 12, 32, 6}};
  EXPECT_EQ(csm.counters_touched_per_decode(), 32u);
}

TEST(Csm, ResetZeroes) {
  CsmSketch csm{CsmConfig{1 << 10, 8, 7}};
  for (int i = 0; i < 100; ++i) csm.add(1);
  csm.reset();
  EXPECT_EQ(csm.total(), 0u);
  EXPECT_DOUBLE_EQ(csm.estimate(1), 0.0);
}

// ---------- Space-Saving ----------

TEST(SpaceSaving, TracksHeavyKeysExactlyWhenUnderCapacity) {
  SpaceSaving ss{10};
  for (int i = 0; i < 100; ++i) ss.add(1);
  for (int i = 0; i < 50; ++i) ss.add(2);
  EXPECT_EQ(ss.query(1), 100u);
  EXPECT_EQ(ss.query(2), 50u);
  EXPECT_EQ(ss.query(999), 0u);
}

TEST(SpaceSaving, OverestimateBoundHolds) {
  SpaceSaving ss{8};
  util::SplitMix64 keys{10};
  std::unordered_map<std::uint64_t, std::uint64_t> truth;
  // Heavy skew: key 1 dominates.
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = (i % 3 == 0) ? 1 : (keys() % 64);
    ss.add(key);
    ++truth[key];
  }
  for (const auto& entry : ss.top()) {
    EXPECT_GE(entry.count, truth[entry.key])
        << "space-saving may only overestimate";
    EXPECT_LE(entry.count - entry.error, truth[entry.key])
        << "count - error is a lower bound";
  }
}

TEST(SpaceSaving, HeaviestKeySurvivesChurn) {
  SpaceSaving ss{4};
  util::SplitMix64 keys{11};
  for (int i = 0; i < 10'000; ++i) {
    ss.add(0xBEEF);          // persistent heavy hitter
    ss.add(keys() % 10000);  // churning mice
  }
  EXPECT_TRUE(ss.contains(0xBEEF));
  EXPECT_EQ(ss.top().front().key, 0xBEEF);
}

TEST(SpaceSaving, CapacityRespected) {
  SpaceSaving ss{5};
  for (std::uint64_t k = 0; k < 100; ++k) ss.add(k);
  EXPECT_EQ(ss.size(), 5u);
}

// ---------- Bloom ----------

TEST(Bloom, NoFalseNegatives) {
  BloomFilter bloom{10'000, 0.01};
  util::SplitMix64 keys{12};
  std::vector<std::uint64_t> inserted;
  for (int i = 0; i < 10'000; ++i) {
    inserted.push_back(keys());
    bloom.insert(inserted.back());
  }
  for (const auto key : inserted) {
    EXPECT_TRUE(bloom.maybe_contains(key));
  }
}

TEST(Bloom, FalsePositiveRateNearTarget) {
  BloomFilter bloom{10'000, 0.01};
  util::SplitMix64 keys{13};
  for (int i = 0; i < 10'000; ++i) bloom.insert(keys());
  util::SplitMix64 probes{999};  // disjoint stream
  int fp = 0;
  constexpr int kProbes = 50'000;
  for (int i = 0; i < kProbes; ++i) {
    if (bloom.maybe_contains(probes())) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / kProbes, 0.03);
}

TEST(Bloom, ResetClears) {
  BloomFilter bloom{100, 0.01};
  bloom.insert(5);
  bloom.reset();
  EXPECT_FALSE(bloom.maybe_contains(5));
}

TEST(Bloom, SizingMonotoneInTargetRate) {
  BloomFilter loose{1000, 0.1};
  BloomFilter tight{1000, 0.001};
  EXPECT_GT(tight.bit_count(), loose.bit_count());
  EXPECT_GT(tight.hash_count(), loose.hash_count());
}

}  // namespace
}  // namespace instameasure::sketch
