#include "netio/flow_key.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace instameasure::netio {
namespace {

FlowKey sample_key() {
  return FlowKey{0xC0A80001, 0x08080808, 443, 51234,
                 static_cast<std::uint8_t>(IpProto::kTcp)};
}

TEST(FlowKey, EqualityAndOrdering) {
  const auto a = sample_key();
  auto b = a;
  EXPECT_EQ(a, b);
  b.src_port = 444;
  EXPECT_NE(a, b);
  EXPECT_TRUE(a < b || b < a);
}

TEST(FlowKey, HashIsDeterministic) {
  const auto a = sample_key();
  EXPECT_EQ(a.hash(), a.hash());
  EXPECT_EQ(a.hash(7), a.hash(7));
  EXPECT_NE(a.hash(7), a.hash(8)) << "seed must perturb the hash";
}

TEST(FlowKey, EveryFieldAffectsHash) {
  const auto base = sample_key();
  auto k = base;
  k.src_ip ^= 1;
  EXPECT_NE(base.hash(), k.hash());
  k = base;
  k.dst_ip ^= 1;
  EXPECT_NE(base.hash(), k.hash());
  k = base;
  k.src_port ^= 1;
  EXPECT_NE(base.hash(), k.hash());
  k = base;
  k.dst_port ^= 1;
  EXPECT_NE(base.hash(), k.hash());
  k = base;
  k.proto = static_cast<std::uint8_t>(IpProto::kUdp);
  EXPECT_NE(base.hash(), k.hash());
}

TEST(FlowKey, DirectionMatters) {
  // A 5-tuple and its reverse are distinct L4 flows.
  const auto fwd = sample_key();
  FlowKey rev{fwd.dst_ip, fwd.src_ip, fwd.dst_port, fwd.src_port, fwd.proto};
  EXPECT_NE(fwd.hash(), rev.hash());
}

TEST(FlowKey, Id32DerivedFromHash) {
  const auto key = sample_key();
  EXPECT_EQ(key.id32(), static_cast<std::uint32_t>(key.hash() >> 32));
}

TEST(FlowKey, FewCollisionsAcrossRandomKeys) {
  std::set<std::uint64_t> hashes;
  std::uint64_t state = 1;
  for (int i = 0; i < 100000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    FlowKey key{static_cast<std::uint32_t>(state >> 32),
                static_cast<std::uint32_t>(state),
                static_cast<std::uint16_t>(state >> 8),
                static_cast<std::uint16_t>(state >> 24),
                static_cast<std::uint8_t>(6)};
    hashes.insert(key.hash());
  }
  EXPECT_EQ(hashes.size(), 100000u);
}

TEST(FlowKey, WorksInUnorderedContainers) {
  std::unordered_set<FlowKey, FlowKeyHash> set;
  set.insert(sample_key());
  EXPECT_TRUE(set.contains(sample_key()));
  auto other = sample_key();
  other.dst_port = 1;
  EXPECT_FALSE(set.contains(other));
}

TEST(FlowKey, ToStringFormat) {
  EXPECT_EQ(sample_key().to_string(), "192.168.0.1:443->8.8.8.8:51234/TCP");
}

TEST(Ipv4ToString, Formats) {
  EXPECT_EQ(ipv4_to_string(0x7F000001), "127.0.0.1");
  EXPECT_EQ(ipv4_to_string(0), "0.0.0.0");
  EXPECT_EQ(ipv4_to_string(0xFFFFFFFF), "255.255.255.255");
}

TEST(IpProto, ToString) {
  EXPECT_STREQ(to_string(IpProto::kTcp), "TCP");
  EXPECT_STREQ(to_string(IpProto::kUdp), "UDP");
  EXPECT_STREQ(to_string(IpProto::kIcmp), "ICMP");
}

}  // namespace
}  // namespace instameasure::netio
