#include "sketch/hyperloglog.h"

#include <gtest/gtest.h>

#include "util/hash.h"
#include "util/rng.h"

namespace instameasure::sketch {
namespace {

TEST(HyperLogLog, EmptyEstimatesZero) {
  const HyperLogLog hll{10};
  EXPECT_NEAR(hll.estimate(), 0.0, 0.5);
}

TEST(HyperLogLog, SmallCardinalitiesExact) {
  // Linear counting regime: tiny sets should be near-exact.
  HyperLogLog hll{12};
  for (std::uint64_t i = 1; i <= 50; ++i) hll.add(util::mix64(i));
  EXPECT_NEAR(hll.estimate(), 50.0, 3.0);
}

TEST(HyperLogLog, DuplicatesDoNotInflate) {
  HyperLogLog hll{10};
  for (int rep = 0; rep < 100; ++rep) {
    for (std::uint64_t i = 1; i <= 20; ++i) hll.add(util::mix64(i));
  }
  EXPECT_NEAR(hll.estimate(), 20.0, 3.0);
}

class HllCardinalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HllCardinalityTest, WithinThreeSigma) {
  const auto n = GetParam();
  HyperLogLog hll{11};  // m = 2048, sigma ~ 2.3%
  for (std::uint64_t i = 1; i <= n; ++i) {
    hll.add(util::mix64(i * 0x9e3779b97f4a7c15ULL));
  }
  const double est = hll.estimate();
  const double sigma = hll.standard_error();
  EXPECT_NEAR(est / static_cast<double>(n), 1.0, 3.5 * sigma)
      << "n=" << n << " est=" << est;
}

INSTANTIATE_TEST_SUITE_P(Cardinalities, HllCardinalityTest,
                         ::testing::Values(1'000u, 10'000u, 100'000u,
                                           1'000'000u));

TEST(HyperLogLog, MergeEqualsUnion) {
  HyperLogLog a{11}, b{11}, u{11};
  for (std::uint64_t i = 1; i <= 5'000; ++i) {
    a.add(util::mix64(i));
    u.add(util::mix64(i));
  }
  for (std::uint64_t i = 3'000; i <= 8'000; ++i) {
    b.add(util::mix64(i));
    u.add(util::mix64(i));
  }
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.estimate(), u.estimate())
      << "register-wise max is exactly the union sketch";
}

TEST(HyperLogLog, ResetClears) {
  HyperLogLog hll{8};
  for (std::uint64_t i = 0; i < 1000; ++i) hll.add(util::mix64(i));
  hll.reset();
  EXPECT_NEAR(hll.estimate(), 0.0, 0.5);
}

TEST(HyperLogLog, PrecisionControlsError) {
  util::Xoshiro256ss rng{5};
  HyperLogLog coarse{6}, fine{14};
  EXPECT_GT(coarse.standard_error(), fine.standard_error() * 10);
}

}  // namespace
}  // namespace instameasure::sketch
