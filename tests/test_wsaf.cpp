#include "core/wsaf_table.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace instameasure::core {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, ~n, static_cast<std::uint16_t>(n & 0xffff),
                        static_cast<std::uint16_t>((n >> 8) & 0xffff), 6};
}

WsafConfig tiny_config(unsigned log2_entries = 8, unsigned probe_limit = 4) {
  WsafConfig config;
  config.log2_entries = log2_entries;
  config.probe_limit = probe_limit;
  return config;
}

// The core behavioural contract holds for BOTH storage layouts; every
// TEST_P below runs once per layout. Sizes are chosen so the same
// expectation is exact in both: a log2=4/probe=16 table has capacity 16
// under the scalar walk (the triangular window covers all 16 slots) and
// under the bucketed layout (one 16-slot bucket) alike.
class WsafLayoutTest : public ::testing::TestWithParam<WsafLayout> {
 protected:
  WsafConfig config(unsigned log2_entries = 8,
                    unsigned probe_limit = 4) const {
    WsafConfig c = tiny_config(log2_entries, probe_limit);
    c.layout = GetParam();
    return c;
  }
};

INSTANTIATE_TEST_SUITE_P(
    Layouts, WsafLayoutTest,
    ::testing::Values(WsafLayout::kScalarProbe, WsafLayout::kBucketed),
    [](const ::testing::TestParamInfo<WsafLayout>& info) {
      return info.param == WsafLayout::kBucketed ? "Bucketed" : "ScalarProbe";
    });

TEST_P(WsafLayoutTest, InsertThenLookup) {
  WsafTable table{config()};
  const auto key = key_n(1);
  const auto hash = key.hash();
  table.accumulate(key, hash, 10.0, 5000.0, 100);
  const auto entry = table.lookup(key, hash);
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->packets, 10.0);
  EXPECT_DOUBLE_EQ(entry->bytes, 5000.0);
  EXPECT_EQ(entry->last_update_ns, 100u);
  EXPECT_EQ(entry->key, key);
}

TEST_P(WsafLayoutTest, UpdateAccumulates) {
  WsafTable table{config()};
  const auto key = key_n(2);
  const auto hash = key.hash();
  table.accumulate(key, hash, 10.0, 1000.0, 1);
  const auto totals = table.accumulate(key, hash, 5.0, 500.0, 2);
  EXPECT_DOUBLE_EQ(totals.packets, 15.0);
  EXPECT_DOUBLE_EQ(totals.bytes, 1500.0);
  EXPECT_EQ(table.stats().inserts, 1u);
  EXPECT_EQ(table.stats().updates, 1u);
  EXPECT_EQ(table.occupancy(), 1u);
}

TEST_P(WsafLayoutTest, LookupMissingReturnsNullopt) {
  WsafTable table{config()};
  const auto key = key_n(3);
  EXPECT_FALSE(table.lookup(key, key.hash()).has_value());
}

TEST_P(WsafLayoutTest, DistinctFlowsCoexist) {
  WsafTable table{config(10, 8)};
  for (std::uint32_t n = 0; n < 100; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(), static_cast<double>(n + 1), 0.0, n);
  }
  // With load factor ~10% and probe limit 8, evictions should be rare; all
  // recently inserted flows should be findable.
  std::size_t found = 0;
  for (std::uint32_t n = 0; n < 100; ++n) {
    const auto key = key_n(n);
    if (const auto e = table.lookup(key, key.hash())) {
      EXPECT_DOUBLE_EQ(e->packets, static_cast<double>(n + 1));
      ++found;
    }
  }
  EXPECT_GE(found, 99u);
}

TEST_P(WsafLayoutTest, EvictionWhenProbeWindowFull) {
  // Capacity-16 table (see the fixture comment): the 17th distinct flow
  // must evict in either layout.
  WsafTable table{config(4, 16)};
  for (std::uint32_t n = 0; n < 17; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(), 1.0, 0.0, n);
  }
  EXPECT_EQ(table.stats().evictions, 1u);
  EXPECT_EQ(table.occupancy(), 16u);
}

TEST_P(WsafLayoutTest, SecondChancePrefersUnreferencedVictims) {
  WsafTable table{config(4, 16)};
  // Fill the table: flows 0-15.
  for (std::uint32_t n = 0; n < 16; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(), 1.0, 0.0, n);
  }
  // Touch flow 0 again -> its referenced bit is set.
  table.accumulate(key_n(0), key_n(0).hash(), 1.0, 0.0, 20);
  // New flow forces eviction; flow 0 must survive (second chance).
  const auto newcomer = key_n(99);
  table.accumulate(newcomer, newcomer.hash(), 1.0, 0.0, 21);
  EXPECT_TRUE(table.lookup(key_n(0), key_n(0).hash()).has_value());
  EXPECT_TRUE(table.lookup(newcomer, newcomer.hash()).has_value());
}

TEST_P(WsafLayoutTest, GarbageCollectionReclaimsIdleEntries) {
  WsafConfig cfg = config(4, 16);
  cfg.idle_timeout_ns = 1000;
  WsafTable table{cfg};
  for (std::uint32_t n = 0; n < 16; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(), 1.0, 0.0, /*now=*/n);
  }
  // Much later, a new flow arrives: idle entries are reclaimed inline
  // rather than evicting via second chance.
  const auto newcomer = key_n(50);
  table.accumulate(newcomer, newcomer.hash(), 1.0, 0.0, /*now=*/10'000);
  // The dead entry is recycled either by the inline probe-path reclaim or
  // by the incremental sweep that runs ahead of it — never by eviction.
  EXPECT_GE(table.stats().gc_reclaims + table.stats().gc_swept, 1u);
  EXPECT_EQ(table.stats().evictions, 0u);
  EXPECT_TRUE(table.lookup(newcomer, newcomer.hash()).has_value());
}

TEST_P(WsafLayoutTest, LookupFiltersExpiredEntries) {
  WsafConfig cfg = config(8, 4);
  cfg.idle_timeout_ns = 1'000;
  WsafTable table{cfg};
  const auto key = key_n(3);
  const auto hash = key.hash(cfg.seed);
  table.accumulate(key, hash, 5.0, 100.0, /*now=*/100);
  // Fresh as of 500, expired as of 5000: the entry is one accumulate()
  // would reclaim, so lookup must not serve it.
  EXPECT_TRUE(table.lookup(key, hash, 500).has_value());
  EXPECT_FALSE(table.lookup(key, hash, 5'000).has_value());
  // The clockless overload follows the trace-time high-water mark: another
  // flow advancing time past the timeout makes the idle flow invisible.
  EXPECT_TRUE(table.lookup(key, hash).has_value());
  const auto other = key_n(4);
  table.accumulate(other, other.hash(cfg.seed), 1.0, 0.0, /*now=*/9'000);
  EXPECT_EQ(table.latest_ns(), 9'000u);
  EXPECT_FALSE(table.lookup(key, hash).has_value());
}

TEST_P(WsafLayoutTest, LiveEntriesFiltersExpiredEntries) {
  WsafConfig cfg = config(8, 8);
  cfg.idle_timeout_ns = 1'000;
  WsafTable table{cfg};
  for (std::uint32_t n = 0; n < 10; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(cfg.seed), 1.0, 0.0, /*now=*/n);
  }
  // One flow stays active far past the others' expiry.
  const auto active = key_n(99);
  table.accumulate(active, active.hash(cfg.seed), 1.0, 0.0, /*now=*/50'000);
  EXPECT_EQ(table.live_entries().size(), 1u);
  EXPECT_EQ(table.live_entries(50'000).size(), 1u);
  // As of a time before the gap every flow was live — minus at most the
  // kSweepSlotsPerAccumulate slots the last accumulate's incremental sweep
  // may already have cleared.
  EXPECT_GE(table.live_entries(500).size(),
            11u - WsafTable::kSweepSlotsPerAccumulate);
}

TEST_P(WsafLayoutTest, OccupancyConvergesAfterFlowsGoIdle) {
  // Regression: occupied_ used to count expired entries forever unless
  // their exact slot happened to be reused, so occupancy (and the pressure
  // signal built on it) overstated load on any table with idle flows.
  WsafConfig cfg = config(6, 8);  // 64 slots
  cfg.idle_timeout_ns = 1'000;
  WsafTable table{cfg};
  for (std::uint32_t n = 0; n < 40; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(cfg.seed), 1.0, 0.0, /*now=*/n);
  }
  const auto occupied_before = table.occupancy();
  EXPECT_GE(occupied_before, 30u);

  // Everything idles past the timeout while one unrelated flow keeps the
  // table ticking. The incremental sweep (2 slots/accumulate) must walk
  // the whole table within entries()/2 accumulates and release the dead
  // entries — no traffic ever probes their chains.
  const auto active = key_n(999);
  const auto active_hash = active.hash(cfg.seed);
  for (std::uint64_t i = 0; i < 40; ++i) {
    table.accumulate(active, active_hash, 1.0, 0.0, /*now=*/100'000 + i);
  }
  EXPECT_EQ(table.occupancy(), 1u);
  EXPECT_GE(table.stats().gc_swept, occupied_before - 1);
  EXPECT_LT(table.pressure().occupancy_ratio, 0.05);
  EXPECT_EQ(table.live_entries().size(), table.occupancy());
}

TEST_P(WsafLayoutTest, SweepExpiredFullScanReleasesEverything) {
  WsafConfig cfg = config(8, 8);
  cfg.idle_timeout_ns = 1'000;
  WsafTable table{cfg};
  for (std::uint32_t n = 0; n < 20; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(cfg.seed), 1.0, 0.0, /*now=*/n);
  }
  const auto occupied = table.occupancy();
  EXPECT_EQ(table.sweep_expired(/*now=*/1'000'000), occupied);
  EXPECT_EQ(table.occupancy(), 0u);
  EXPECT_EQ(table.stats().gc_swept, occupied);
  // Idempotent: nothing left to release.
  EXPECT_EQ(table.sweep_expired(1'000'000), 0u);
  // And the released slots are genuinely reusable in both layouts (the
  // bucketed sweep must also clear the metadata bitmap).
  for (std::uint32_t n = 0; n < 20; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(cfg.seed), 1.0, 0.0, /*now=*/1'000'000 + n);
    EXPECT_TRUE(table.lookup(key, key.hash(cfg.seed)).has_value());
  }
}

TEST_P(WsafLayoutTest, ExpiredEntryIsNotUpdated) {
  WsafConfig cfg = config(4, 4);
  cfg.idle_timeout_ns = 100;
  WsafTable table{cfg};
  const auto key = key_n(7);
  table.accumulate(key, key.hash(), 5.0, 0.0, 0);
  // Long idle gap: the flow's record has expired; a new event re-inserts
  // fresh rather than resuming the stale count.
  const auto totals = table.accumulate(key, key.hash(), 3.0, 0.0, 10'000);
  EXPECT_DOUBLE_EQ(totals.packets, 3.0);
}

TEST_P(WsafLayoutTest, HighLoadFactorReachable) {
  // Quadratic probing over power-of-two size with generous probe limit
  // should fill most of a small table (bucketed: a 2-bucket window).
  WsafTable table{config(10, 32)};
  util::SplitMix64 rng{5};
  for (int n = 0; n < 5000; ++n) {
    const auto key = key_n(static_cast<std::uint32_t>(rng()));
    table.accumulate(key, key.hash(), 1.0, 0.0, static_cast<std::uint64_t>(n));
  }
  EXPECT_GT(table.load_factor(), 0.9);
}

TEST_P(WsafLayoutTest, LiveEntriesMatchesOccupancy) {
  WsafTable table{config(10, 8)};
  for (std::uint32_t n = 0; n < 50; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(), 1.0, 2.0, n);
  }
  EXPECT_EQ(table.live_entries().size(), table.occupancy());
}

TEST_P(WsafLayoutTest, ResetClears) {
  WsafTable table{config()};
  const auto key = key_n(1);
  table.accumulate(key, key.hash(), 1.0, 1.0, 1);
  table.reset();
  EXPECT_EQ(table.occupancy(), 0u);
  EXPECT_FALSE(table.lookup(key, key.hash()).has_value());
  EXPECT_EQ(table.stats().inserts, 0u);
}

TEST_P(WsafLayoutTest, RateQueriesUseLifetimeSpan) {
  WsafTable table{config()};
  const auto key = key_n(11);
  const auto hash = key.hash();
  // 100 packets at t=0, another 100 at t=1s, 20KB total bytes.
  table.accumulate(key, hash, 100.0, 10'000.0, 0);
  table.accumulate(key, hash, 100.0, 10'000.0, 1'000'000'000ULL);
  const auto entry = table.lookup(key, hash);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->first_seen_ns, 0u);
  EXPECT_EQ(entry->last_update_ns, 1'000'000'000ULL);
  EXPECT_DOUBLE_EQ(entry->packet_rate(), 200.0) << "200 pkts over 1s";
  EXPECT_DOUBLE_EQ(entry->byte_rate(), 20'000.0);
}

TEST_P(WsafLayoutTest, RateZeroForSingleEvent) {
  WsafTable table{config()};
  const auto key = key_n(12);
  table.accumulate(key, key.hash(), 50.0, 5'000.0, 777);
  const auto entry = table.lookup(key, key.hash());
  ASSERT_TRUE(entry.has_value());
  EXPECT_DOUBLE_EQ(entry->packet_rate(), 0.0) << "no span yet";
}

TEST(WsafTable, BucketedRejectsSubBucketTable) {
  WsafConfig config = tiny_config(2, 4);  // 4 slots: less than one bucket
  config.layout = WsafLayout::kBucketed;
  EXPECT_THROW((void)WsafTable{config}, std::invalid_argument);
}

TEST(WsafTable, PolicyVersionTracksLayout) {
  EXPECT_EQ(wsaf_eviction_policy_version(WsafLayout::kScalarProbe), 1u);
  EXPECT_EQ(wsaf_eviction_policy_version(WsafLayout::kBucketed), 2u);
  WsafTable scalar{tiny_config()};
  EXPECT_EQ(scalar.policy_version(), 1u);
  WsafConfig bucketed = tiny_config(4, 16);
  bucketed.layout = WsafLayout::kBucketed;
  EXPECT_EQ(WsafTable{bucketed}.policy_version(), 2u);
}

TEST(WsafTable, NoReclaimCountedWhenKeyMatchFollowsNotedExpiredSlot) {
  // Regression: the probe loop used to count (and trace) a GC reclaim the
  // moment an expired slot was *noted* as first_free, even when a later
  // probe found the flow's live entry and the slot was never overwritten.
  // (Scalar-layout mechanics — the slot-collision search below targets the
  // quadratic walk; the bucketed twin lives in test_wsaf_bucket.cpp.)
  WsafConfig config = tiny_config(4, 4);  // 16 slots
  config.idle_timeout_ns = 1'000;
  WsafTable table{config};
  const std::uint64_t mask = table.config().entries() - 1;

  // Two distinct keys whose probe sequences START at the same slot, chosen
  // in the table's upper half so the first few incremental sweeps (cursor
  // starts at slot 0, 2 slots per accumulate) cannot clear it mid-test.
  netio::FlowKey ka{}, kb{}, kc{};
  bool found = false;
  for (std::uint32_t a = 1; a < 200 && !found; ++a) {
    for (std::uint32_t b = a + 1; b < 200 && !found; ++b) {
      const auto key_a = key_n(a), key_b = key_n(b);
      const auto ha = key_a.hash(config.seed), hb = key_b.hash(config.seed);
      if ((ha & mask) == (hb & mask) && (ha & mask) >= 8 &&
          static_cast<std::uint32_t>(ha >> 32) !=
              static_cast<std::uint32_t>(hb >> 32)) {
        ka = key_a;
        kb = key_b;
        found = true;
      }
    }
  }
  ASSERT_TRUE(found) << "no colliding key pair in the search range";

  table.accumulate(ka, ka.hash(config.seed), 1.0, 0.0, /*now=*/0);
  table.accumulate(kb, kb.hash(config.seed), 1.0, 0.0, /*now=*/1);
  ASSERT_EQ(table.occupancy(), 2u);

  // At t=1001 A (last update 0) is just past the timeout while B (last
  // update 1) is still fresh. B's update probes A's slot (expired ->
  // noted), then finds its own live entry. Nothing is overwritten: no
  // reclaim may be counted.
  table.accumulate(kb, kb.hash(config.seed), 1.0, 0.0, /*now=*/1'001);
  EXPECT_EQ(table.stats().gc_reclaims, 0u);
  EXPECT_EQ(table.stats().updates, 1u);

  // A third colliding flow DOES overwrite the expired slot: reclaim now.
  for (std::uint32_t c = 1; c < 2'000; ++c) {
    const auto key_c = key_n(c + 10'000);
    const auto hc = key_c.hash(config.seed);
    if ((hc & mask) == (ka.hash(config.seed) & mask)) {
      kc = key_c;
      break;
    }
  }
  ASSERT_NE(kc, netio::FlowKey{});
  const auto swept_before = table.stats().gc_swept;
  table.accumulate(kc, kc.hash(config.seed), 1.0, 0.0, /*now=*/1'002);
  // Either the insert overwrote the expired slot (reclaim) or the sweep
  // got there first this accumulate; in both cases exactly one dead entry
  // was released and the newcomer is live.
  EXPECT_EQ(table.stats().gc_reclaims +
                (table.stats().gc_swept - swept_before),
            1u);
  EXPECT_TRUE(table.lookup(kc, kc.hash(config.seed)).has_value());
}

TEST(WsafTable, LogicalMemoryAccountingMatchesPaper) {
  WsafConfig config;
  config.log2_entries = 20;
  WsafTable table{config};
  // Paper §IV.D: 2^20 entries x 33 bytes = 33MB (sic: ~34.6MB decimal).
  EXPECT_EQ(table.logical_memory_bytes(), (1u << 20) * 33ull);
}

class WsafProbeLimitTest
    : public ::testing::TestWithParam<std::tuple<WsafLayout, unsigned>> {};

TEST_P(WsafProbeLimitTest, FlowsSurviveUnderChurn) {
  WsafConfig config = tiny_config(12, std::get<1>(GetParam()));
  config.layout = std::get<0>(GetParam());
  WsafTable table{config};
  util::SplitMix64 rng{9};
  // Persistent elephants updated continuously amid churning mice.
  std::vector<netio::FlowKey> elephants;
  for (std::uint32_t n = 0; n < 16; ++n) elephants.push_back(key_n(n));
  for (int round = 0; round < 2000; ++round) {
    for (const auto& e : elephants) {
      table.accumulate(e, e.hash(), 1.0, 0.0,
                       static_cast<std::uint64_t>(round) * 100);
    }
    for (int m = 0; m < 8; ++m) {
      const auto key = key_n(static_cast<std::uint32_t>(rng()));
      table.accumulate(key, key.hash(), 1.0, 0.0,
                       static_cast<std::uint64_t>(round) * 100 + 50);
    }
  }
  // Frequently-referenced elephants must all survive the churn.
  for (const auto& e : elephants) {
    EXPECT_TRUE(table.lookup(e, e.hash()).has_value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProbeLimits, WsafProbeLimitTest,
    ::testing::Combine(::testing::Values(WsafLayout::kScalarProbe,
                                         WsafLayout::kBucketed),
                       ::testing::Values(4u, 8u, 16u, 32u)),
    [](const ::testing::TestParamInfo<std::tuple<WsafLayout, unsigned>>&
           info) {
      const auto layout = std::get<0>(info.param) == WsafLayout::kBucketed
                              ? "Bucketed"
                              : "ScalarProbe";
      return std::string{layout} + "Probe" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace instameasure::core
