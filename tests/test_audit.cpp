// Differential suite for the live accuracy-audit plane: the live gauges
// are only worth scraping if they agree with the offline evaluation the
// repo already trusts. For every ingest mode (scalar, batch, multicore ×
// two trace seeds) the auditor's end-of-run summary — ARE, signed bias,
// recall, precision, attribution — must match a from-scratch
// analysis-style computation over the same sampled slice, exactly (the
// ISSUE's 1% acceptance band is margin, not slack). The suite also pins
// the two safety contracts: an attached auditor never perturbs engine
// state (runtime on/off bit-identity), and QueryEngine::audit() is safe
// to call from a reader thread while ingest runs (the TSan hammer).
#include "audit/auditor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "analysis/ground_truth.h"
#include "core/instameasure.h"
#include "core/query_engine.h"
#include "runtime/multicore.h"
#include "trace/generator.h"

namespace instameasure {
namespace {

core::EngineConfig audited_config(unsigned sample_shift) {
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 14;
  config.heavy_hitter.packet_threshold = 5'000;
  config.enable_audit = true;
  config.audit.sample_shift = sample_shift;
  return config;
}

trace::Trace zipf_trace(std::uint64_t seed) {
  trace::TraceConfig config;
  config.name = "audit-" + std::to_string(seed);
  config.duration_s = 1.0;
  config.tiers = {{3, 15'000, 30'000}, {25, 1'000, 4'000}};
  config.mice = {8'000, 1.1, 40};
  config.seed = seed;
  return trace::generate(config);
}

/// The offline reference: analysis::metrics-style aggregates recomputed
/// from ground truth + per-flow queries, restricted to the audited slice.
struct OfflineAudit {
  std::uint64_t flows = 0;
  double sum_abs_rel_err = 0;
  double sum_rel_err = 0;
  std::uint64_t undercount = 0;
  std::uint64_t overcount = 0;
  std::uint64_t true_hh = 0;
  std::uint64_t detected_true_hh = 0;
  [[nodiscard]] double are() const {
    return flows ? sum_abs_rel_err / static_cast<double>(flows) : 0;
  }
  [[nodiscard]] double recall() const {
    return true_hh ? static_cast<double>(detected_true_hh) /
                         static_cast<double>(true_hh)
                   : 1.0;
  }
};

/// `query` answers per-flow estimates; `detected` says whether the engine
/// raised a packet-metric alarm for the key.
template <typename QueryFn, typename DetectedFn>
OfflineAudit offline_reference(const analysis::GroundTruth& truth,
                               const audit::Auditor& sampler,
                               double packet_threshold, double tolerance,
                               const QueryFn& query,
                               const DetectedFn& detected) {
  OfflineAudit ref;
  for (const auto& [key, t] : truth.flows()) {
    if (!sampler.sampled(key) || t.packets == 0) continue;
    ++ref.flows;
    const auto est = query(key);
    const double rel = (est.packets - static_cast<double>(t.packets)) /
                       static_cast<double>(t.packets);
    ref.sum_abs_rel_err += std::abs(rel);
    ref.sum_rel_err += rel;
    if (rel < -tolerance) ++ref.undercount;
    if (rel > tolerance) ++ref.overcount;
    if (packet_threshold > 0 &&
        static_cast<double>(t.packets) >= packet_threshold) {
      ++ref.true_hh;
      if (detected(key)) ++ref.detected_true_hh;
    }
  }
  return ref;
}

void expect_summary_matches(const audit::AuditSummary& live,
                            const OfflineAudit& ref,
                            const std::string& tag) {
  SCOPED_TRACE(tag);
  EXPECT_EQ(live.comparisons, ref.flows);
  EXPECT_NEAR(live.are, ref.are(), 1e-9);
  EXPECT_NEAR(live.sum_abs_rel_err, ref.sum_abs_rel_err, 1e-6);
  EXPECT_NEAR(live.sum_rel_err, ref.sum_rel_err, 1e-6);
  EXPECT_EQ(live.undercount, ref.undercount);
  EXPECT_EQ(live.overcount, ref.overcount);
  EXPECT_EQ(live.true_hh, ref.true_hh);
  EXPECT_EQ(live.detected_true_hh, ref.detected_true_hh);
  EXPECT_NEAR(live.recall, ref.recall(), 1e-9);
  // Every undercount carries exactly one attributed cause.
  EXPECT_EQ(live.causes[0] + live.causes[1] + live.causes[2],
            live.undercount);
  if (live.detections > 0) {
    EXPECT_NEAR(live.precision,
                static_cast<double>(live.detected_true_hh) /
                    static_cast<double>(live.detections),
                1e-12);
  } else {
    EXPECT_DOUBLE_EQ(live.precision, 1.0);
  }
}

TEST(AuditSampling, SliceIsDeterministicAndSeedIndependentOfEngine) {
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "audit compiled out";
  audit::AuditConfig a;
  a.sample_shift = 8;
  audit::Auditor first{a}, second{a};
  const auto trace = zipf_trace(7);
  const analysis::GroundTruth truth{trace};
  std::uint64_t sampled = 0;
  for (const auto& [key, t] : truth.flows()) {
    EXPECT_EQ(first.sampled(key), second.sampled(key));
    if (first.sampled(key)) ++sampled;
  }
  // 1/256 of the ring: the trace has ~8k flows, so the expected count is
  // ~32; just require the slice to be a small non-empty minority.
  EXPECT_GT(sampled, 0u);
  EXPECT_LT(sampled, truth.flows().size() / 64);

  audit::AuditConfig everything;
  everything.sample_shift = 0;
  audit::AuditConfig nothing;
  nothing.sample_shift = 64;
  audit::Auditor all{everything}, none{nothing};
  for (const auto& [key, t] : truth.flows()) {
    EXPECT_TRUE(all.sampled(key));
    EXPECT_FALSE(none.sampled(key));
  }
}

TEST(AuditDifferential, ScalarAndBatchMatchOfflineMetrics) {
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "audit compiled out";
  for (const std::uint64_t seed : {11u, 22u}) {
    const auto trace = zipf_trace(seed);
    const analysis::GroundTruth truth{trace};
    // shift 0 audits every flow (maximum teeth); shift 2 exercises the
    // sampling reject on the same trace.
    for (const unsigned shift : {0u, 2u}) {
      for (const std::size_t batch : {std::size_t{0}, std::size_t{64}}) {
        core::InstaMeasure engine{audited_config(shift)};
        if (batch == 0) {
          for (const auto& rec : trace.packets) engine.process(rec);
        } else {
          const std::span<const netio::PacketRecord> all{trace.packets};
          for (std::size_t off = 0; off < all.size(); off += batch) {
            engine.process_batch(
                all.subspan(off, std::min(batch, all.size() - off)));
          }
        }
        engine.audit_final_sweep();
        ASSERT_NE(engine.auditor(), nullptr);
        const auto live = engine.auditor()->summary();
        ASSERT_GT(live.comparisons, 0u);
        if (shift == 0) {
          ASSERT_GT(live.true_hh, 0u)
              << "no audited heavy hitters: differential has no teeth";
        }

        const auto& detections = engine.detections();
        const auto ref = offline_reference(
            truth, *engine.auditor(),
            engine.auditor()->config().packet_threshold,
            engine.auditor()->config().error_tolerance,
            [&](const netio::FlowKey& key) { return engine.query(key); },
            [&](const netio::FlowKey& key) {
              for (const auto& d : detections) {
                if (d.key == key &&
                    d.metric == core::TopKMetric::kPackets) {
                  return true;
                }
              }
              return false;
            });
        expect_summary_matches(live, ref,
                               "seed=" + std::to_string(seed) +
                                   " shift=" + std::to_string(shift) +
                                   " batch=" + std::to_string(batch));
      }
    }
  }
}

TEST(AuditDifferential, MultiCoreMergedSummaryMatchesOffline) {
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "audit compiled out";
  for (const std::uint64_t seed : {11u, 22u}) {
    const auto trace = zipf_trace(seed);
    const analysis::GroundTruth truth{trace};
    runtime::MultiCoreConfig config;
    config.workers = 3;
    config.engine = audited_config(0);
    runtime::MultiCoreEngine mc{config};
    const auto stats = mc.run(trace);
    ASSERT_EQ(stats.processed, stats.packets) << "kBlock must not drop";

    ASSERT_NE(mc.queries(), nullptr);
    const auto live = mc.queries()->audit();
    ASSERT_GT(live.comparisons, 0u);
    ASSERT_GT(live.true_hh, 0u);

    // Shard-routed queries + per-shard detection logs stand in for the
    // single engine's.
    const auto ref = offline_reference(
        truth, *mc.engine(0).auditor(),
        mc.engine(0).auditor()->config().packet_threshold,
        mc.engine(0).auditor()->config().error_tolerance,
        [&](const netio::FlowKey& key) { return mc.query(key); },
        [&](const netio::FlowKey& key) {
          const auto& detections =
              mc.engine(mc.worker_of(key)).detections();
          for (const auto& d : detections) {
            if (d.key == key &&
                d.metric == core::TopKMetric::kPackets) {
              return true;
            }
          }
          return false;
        });
    expect_summary_matches(live, ref, "multicore seed=" +
                                          std::to_string(seed));

    // The audited slice must be the same across shards (the sample seed is
    // not decorrelated): every shard agrees on membership.
    for (const auto& [key, t] : truth.flows()) {
      const bool s0 = mc.engine(0).auditor()->sampled(key);
      for (unsigned w = 1; w < mc.workers(); ++w) {
        EXPECT_EQ(mc.engine(w).auditor()->sampled(key), s0);
      }
      break;  // spot check; full agreement is a pure function of config
    }
  }
}

[[nodiscard]] std::string wsaf_bytes(const core::InstaMeasure& engine,
                                     const std::string& tag) {
  const std::string path = testing::TempDir() + "audit-wsaf-" + tag + ".bin";
  engine.wsaf().save(path);
  std::ifstream in{path, std::ios::binary};
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(AuditDifferential, AuditIsAPureObserver) {
  // enable_audit on vs off over the same trace: detections, WSAF bytes,
  // and per-flow queries must be bit-identical — the audit plane reads
  // engine state, never writes it. (The compile-time OFF flavor rides the
  // CI build matrix; this pins the runtime toggle.)
  const auto trace = zipf_trace(33);
  auto off_config = audited_config(0);
  off_config.enable_audit = false;
  core::InstaMeasure with_audit{audited_config(0)};
  core::InstaMeasure without{off_config};
  for (const auto& rec : trace.packets) {
    with_audit.process(rec);
    without.process(rec);
  }
  EXPECT_EQ(wsaf_bytes(with_audit, "on"), wsaf_bytes(without, "off"));
  const auto& da = with_audit.detections();
  const auto& db = without.detections();
  ASSERT_EQ(da.size(), db.size());
  for (std::size_t i = 0; i < da.size(); ++i) {
    EXPECT_EQ(da[i].key, db[i].key);
    EXPECT_EQ(da[i].detected_at_ns, db[i].detected_at_ns);
    EXPECT_DOUBLE_EQ(da[i].value_at_detection, db[i].value_at_detection);
  }
  const analysis::GroundTruth truth{trace};
  for (const auto& [key, t] : truth.flows()) {
    const auto ea = with_audit.query(key);
    const auto eb = without.query(key);
    EXPECT_DOUBLE_EQ(ea.packets, eb.packets);
    EXPECT_DOUBLE_EQ(ea.bytes, eb.bytes);
    EXPECT_EQ(ea.in_wsaf, eb.in_wsaf);
  }
}

TEST(AuditConcurrency, SummaryReadableWhileIngestRuns) {
  // The TSan target (scripts/run_sanitized_tests.sh runs this suite under
  // -fsanitize=thread): a reader thread hammers QueryEngine::audit() and
  // the per-shard summaries while the multicore engine ingests. The
  // relaxed single-writer cells must yield a torn-free, race-free
  // snapshot; the assertions only sanity-check ranges because mid-run
  // values are moving targets.
  if constexpr (!audit::kEnabled) GTEST_SKIP() << "audit compiled out";
  const auto trace = zipf_trace(44);
  runtime::MultiCoreConfig config;
  config.workers = 3;
  config.engine = audited_config(0);
  runtime::MultiCoreEngine mc{config};
  ASSERT_NE(mc.queries(), nullptr);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader{[&] {
    while (!done.load(std::memory_order_relaxed)) {
      const auto s = mc.queries()->audit();
      EXPECT_GE(s.are, 0.0);
      EXPECT_GE(s.recall, 0.0);
      EXPECT_LE(s.recall, 1.0);
      EXPECT_GE(s.comparisons, 0u);
      ++reads;
    }
  }};
  for (int pass = 0; pass < 3; ++pass) mc.run(trace);
  done = true;
  reader.join();
  EXPECT_GT(reads.load(), 0u);

  const auto final_summary = mc.queries()->audit();
  EXPECT_GT(final_summary.comparisons, 0u);
  EXPECT_GE(final_summary.recall, 0.0);
  EXPECT_LE(final_summary.recall, 1.0);
}

TEST(AuditSummaryMerge, RatiosRecomputedFromRawSums) {
  audit::AuditSummary a;
  a.comparisons = 2;
  a.sum_abs_rel_err = 0.2;  // shard ARE 0.1
  a.sum_rel_err = -0.2;
  a.true_hh = 1;
  a.detected_true_hh = 1;
  a.detections = 1;
  audit::AuditSummary b;
  b.comparisons = 8;
  b.sum_abs_rel_err = 0.1;  // shard ARE 0.0125
  b.sum_rel_err = 0.1;
  b.true_hh = 3;
  b.detected_true_hh = 2;
  b.detections = 4;
  const auto m = audit::merge(a, b);
  EXPECT_EQ(m.comparisons, 10u);
  // Exact pooled ARE (0.3/10), NOT the average of the shard AREs (0.056).
  EXPECT_NEAR(m.are, 0.03, 1e-12);
  EXPECT_NEAR(m.mean_rel_bias, -0.01, 1e-12);
  EXPECT_NEAR(m.recall, 0.75, 1e-12);
  EXPECT_NEAR(m.precision, 0.6, 1e-12);

  const audit::AuditSummary empty;
  const auto with_empty = audit::merge(empty, a);
  EXPECT_EQ(with_empty.comparisons, a.comparisons);
  EXPECT_NEAR(with_empty.are, 0.1, 1e-12);
}

}  // namespace
}  // namespace instameasure
