#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace instameasure::util {
namespace {

TEST(Mix64, IsDeterministic) {
  EXPECT_EQ(mix64(12345), mix64(12345));
  EXPECT_EQ(mix64(0), mix64(0));
}

TEST(Mix64, DistinguishesNearbyInputs) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 10000; ++i) outputs.insert(mix64(i));
  EXPECT_EQ(outputs.size(), 10000u) << "sequential inputs must not collide";
}

TEST(Mix64, AvalanchesSingleBitFlips) {
  // Flipping any single input bit should flip roughly half the output bits.
  const std::uint64_t base = 0x0123456789abcdefULL;
  const std::uint64_t h0 = mix64(base);
  for (int bit = 0; bit < 64; ++bit) {
    const auto h1 = mix64(base ^ (1ULL << bit));
    const int flipped = std::popcount(h0 ^ h1);
    EXPECT_GT(flipped, 12) << "weak avalanche at bit " << bit;
    EXPECT_LT(flipped, 52) << "weak avalanche at bit " << bit;
  }
}

TEST(HashCombine, OrderMatters) {
  EXPECT_NE(hash_combine(hash_combine(0, 1), 2),
            hash_combine(hash_combine(0, 2), 1));
}

TEST(HashBytes, EmptyAndShortInputs) {
  EXPECT_EQ(hash_bytes(std::string_view{}), hash_bytes(std::string_view{}));
  EXPECT_NE(hash_bytes(std::string_view{"a"}),
            hash_bytes(std::string_view{"b"}));
  EXPECT_NE(hash_bytes(std::string_view{"a"}),
            hash_bytes(std::string_view{""}));
}

TEST(HashBytes, SeedChangesResult) {
  EXPECT_NE(hash_bytes(std::string_view{"flow"}, 1),
            hash_bytes(std::string_view{"flow"}, 2));
}

TEST(HashBytes, LengthExtensionDiffers) {
  // "abc" vs "abc\0" style prefixes must hash differently.
  const std::string a(8, 'x');
  const std::string b(9, 'x');
  EXPECT_NE(hash_bytes(std::string_view{a}), hash_bytes(std::string_view{b}));
}

TEST(HashBytes, TailBytesAffectHash) {
  // Inputs differing only in the non-8-byte-aligned tail must differ.
  std::string a = "0123456789";  // 10 bytes: 8-byte word + 2-byte tail
  std::string b = a;
  b[9] = 'X';
  EXPECT_NE(hash_bytes(std::string_view{a}), hash_bytes(std::string_view{b}));
}

TEST(ReduceRange, StaysInRange) {
  for (std::uint64_t n : {1ULL, 2ULL, 3ULL, 63ULL, 64ULL, 1000ULL}) {
    for (std::uint64_t h :
         {0ULL, 1ULL, ~0ULL, 0x8000000000000000ULL, 12345678901234ULL}) {
      EXPECT_LT(reduce_range(h, n), n);
    }
  }
}

TEST(ReduceRange, RoughlyUniform) {
  constexpr std::uint64_t kBuckets = 16;
  constexpr int kSamples = 160000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) {
    ++counts[reduce_range(mix64(static_cast<std::uint64_t>(i)), kBuckets)];
  }
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.10);
  }
}

}  // namespace
}  // namespace instameasure::util
