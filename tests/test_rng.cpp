#include "util/rng.h"

#include <gtest/gtest.h>

#include <vector>

namespace instameasure::util {
namespace {

TEST(SplitMix64, DeterministicSequence) {
  SplitMix64 a{7}, b{7};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a{1}, b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Xoshiro, DeterministicSequence) {
  Xoshiro256ss a{99}, b{99};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, NextDoubleInUnitInterval) {
  Xoshiro256ss rng{3};
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Xoshiro, NextDoubleMeanIsHalf) {
  Xoshiro256ss rng{5};
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro, NextBelowBounds) {
  Xoshiro256ss rng{11};
  for (std::uint64_t n : {1ULL, 2ULL, 7ULL, 100ULL, 1'000'000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(n), n);
  }
}

TEST(Xoshiro, NextBelowUniform) {
  Xoshiro256ss rng{13};
  constexpr std::uint64_t kBuckets = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBuckets, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBuckets)];
  const double expected = static_cast<double>(kSamples) / kBuckets;
  for (const auto c : counts) {
    EXPECT_NEAR(static_cast<double>(c), expected, expected * 0.08);
  }
}

TEST(Xoshiro, SatisfiesUniformRandomBitGenerator) {
  static_assert(std::uniform_random_bit_generator<Xoshiro256ss>);
  static_assert(std::uniform_random_bit_generator<SplitMix64>);
  SUCCEED();
}

}  // namespace
}  // namespace instameasure::util
