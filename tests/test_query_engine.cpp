// Live query plane: SnapshotChannel hand-off, ViewPublisher cadence,
// QueryEngine answers, and — the contract the whole subsystem exists for —
// differential equivalence between live queries and a stopped-engine
// full-table scan, plus a concurrent ingest/query hammer (the QueryPlane
// suite; run under TSan by scripts/run_sanitized_tests.sh).
#include "core/query_engine.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "core/instameasure.h"
#include "core/snapshot_channel.h"
#include "core/topk_tracker.h"
#include "core/view_publisher.h"
#include "core/wsaf_table.h"
#include "core/wsaf_view.h"
#include "runtime/multicore.h"
#include "trace/generator.h"

namespace instameasure::core {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n * 2654435761u, ~n, static_cast<std::uint16_t>(n),
                        443, 6};
}

netio::PacketRecord packet(const netio::FlowKey& key, std::uint64_t ts_ns,
                           std::uint16_t len = 500) {
  return netio::PacketRecord{ts_ns, key, len};
}

// Commit one view holding a single marker entry with `packets`.
void publish_marker(SnapshotChannel& channel, double packets) {
  WsafView* view = channel.begin_publish();
  ASSERT_NE(view, nullptr);
  view->clear();
  view->entries.push_back({key_n(1), key_n(1).hash(), packets, 0.0, 0, 0});
  channel.commit();
}

// --- SnapshotChannel -------------------------------------------------------

TEST(SnapshotChannel, EmptyChannelReadsEmpty) {
  SnapshotChannel channel;
  EXPECT_FALSE(channel.read());
  EXPECT_EQ(channel.version(), 0u);
  EXPECT_EQ(channel.skipped_publishes(), 0u);
}

TEST(SnapshotChannel, PublishThenReadRoundTrips) {
  SnapshotChannel channel;
  publish_marker(channel, 42.0);
  const auto view = channel.read();
  ASSERT_TRUE(view);
  EXPECT_EQ(view->version, 1u);
  ASSERT_EQ(view->entries.size(), 1u);
  EXPECT_DOUBLE_EQ(view->entries[0].packets, 42.0);
  EXPECT_EQ(channel.version(), 1u);
}

TEST(SnapshotChannel, PinnedReaderKeepsItsViewWhileWriterRepublishes) {
  SnapshotChannel channel;
  publish_marker(channel, 1.0);
  const auto pinned = channel.read();
  ASSERT_TRUE(pinned);
  // Two more publishes land in other buffers; the pin's content is frozen.
  publish_marker(channel, 2.0);
  publish_marker(channel, 3.0);
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_DOUBLE_EQ(pinned->entries[0].packets, 1.0);
  // A fresh read sees the newest commit.
  const auto fresh = channel.read();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(fresh->version, 3u);
  EXPECT_DOUBLE_EQ(fresh->entries[0].packets, 3.0);
}

TEST(SnapshotChannel, WriterSkipsInsteadOfBlockingWhenEverySpareIsPinned) {
  SnapshotChannel channel;
  // Pin a distinct buffer after each publish until readers hold all
  // kBuffers of them (the last pin is the current view).
  std::vector<SnapshotChannel::ReadView> pins;
  for (unsigned i = 0; i < SnapshotChannel::kBuffers; ++i) {
    publish_marker(channel, static_cast<double>(i));
    pins.push_back(channel.read());
    ASSERT_TRUE(pins.back());
  }
  // Every spare buffer is reader-pinned: the writer must skip, not wait.
  EXPECT_EQ(channel.begin_publish(), nullptr);
  EXPECT_EQ(channel.skipped_publishes(), 1u);
  // Releasing any straggler frees a buffer for the next publish.
  pins.erase(pins.begin());
  EXPECT_NE(channel.begin_publish(), nullptr);
  channel.commit();
  EXPECT_EQ(channel.version(), SnapshotChannel::kBuffers + 1);
}

// Prolonged reader starvation in the middle of an online resize: every
// spare buffer stays pinned while the table grows under ingest. The writer
// must skip every publish (counted exactly, never blocking the data plane),
// the last committed view must stay readable and untouched, and the first
// publish after the pins release must reflect the grown table.
TEST(SnapshotChannel, StarvationDuringResizeCountsSkipsAndKeepsLastView) {
  WsafConfig tc;
  tc.log2_entries = 10;
  tc.probe_limit = 16;
  WsafTable table{tc};
  const auto mk = [](std::uint32_t n) {
    return netio::FlowKey{n, n + 7, static_cast<std::uint16_t>(n), 80, 6};
  };
  for (std::uint32_t n = 0; n < 400; ++n) {
    table.accumulate(mk(n), mk(n).hash(tc.seed), 1.0, 64.0, 100 + n);
  }
  ViewPublisher publisher;
  std::vector<SnapshotChannel::ReadView> pins;
  for (unsigned i = 0; i < SnapshotChannel::kBuffers; ++i) {
    ASSERT_TRUE(publisher.publish_now(table, table.latest_ns()));
    pins.push_back(publisher.channel().read());
    ASSERT_TRUE(pins.back());
  }
  const auto last_version = pins.back()->version;
  const auto last_entries = pins.back()->entries.size();

  ASSERT_TRUE(table.begin_resize(11));
  std::uint64_t skips = 0;
  for (std::uint32_t t = 0; t < 100; ++t) {
    table.accumulate(mk(t % 400), mk(t % 400).hash(tc.seed), 1.0, 64.0,
                     10'000 + t);
    EXPECT_FALSE(publisher.publish_now(table, table.latest_ns()))
        << "all spares pinned: publish " << t << " must skip";
    ++skips;
  }
  table.finish_resize();
  EXPECT_EQ(publisher.skipped_publishes(), skips) << "skip counter exact";
  const auto fresh = publisher.channel().read();
  ASSERT_TRUE(fresh);
  EXPECT_EQ(fresh->version, last_version)
      << "the last committed view must survive the starvation";
  EXPECT_EQ(fresh->entries.size(), last_entries);

  pins.clear();
  EXPECT_TRUE(publisher.publish_now(table, table.latest_ns()));
  const auto grown = publisher.channel().read();
  ASSERT_TRUE(grown);
  EXPECT_EQ(grown->version, last_version + 1);
  EXPECT_EQ(grown->entries.size(), 400u)
      << "the post-release view reflects the grown table's live set";
}

// --- ViewPublisher cadence -------------------------------------------------

WsafConfig small_table_config() {
  WsafConfig config;
  config.log2_entries = 8;
  config.probe_limit = 8;
  return config;
}

TEST(ViewPublisher, PacketCadencePublishesEveryNPackets) {
  WsafTable table{small_table_config()};
  ViewPublishConfig config;
  config.publish_every_packets = 4;
  ViewPublisher publisher{config};
  for (int round = 1; round <= 3; ++round) {
    EXPECT_FALSE(publisher.maybe_publish(table, 10));
    EXPECT_FALSE(publisher.maybe_publish(table, 20));
    EXPECT_FALSE(publisher.maybe_publish(table, 30));
    EXPECT_TRUE(publisher.maybe_publish(table, 40));
    EXPECT_EQ(publisher.publishes(), static_cast<std::uint64_t>(round));
  }
}

TEST(ViewPublisher, BatchedTickCountsEveryPacketInTheChunk) {
  WsafTable table{small_table_config()};
  ViewPublishConfig config;
  config.publish_every_packets = 100;
  ViewPublisher publisher{config};
  EXPECT_FALSE(publisher.maybe_publish(table, 10, /*packets=*/64));
  EXPECT_TRUE(publisher.maybe_publish(table, 20, /*packets=*/64));
}

TEST(ViewPublisher, AutoCadenceScalesWithTableSize) {
  WsafTable small{small_table_config()};
  ViewPublisher publisher{ViewPublishConfig{}};
  // Small tables floor at 2^16 packets; big tables at slots * 8.
  EXPECT_EQ(publisher.effective_every_packets(small), std::uint64_t{1} << 16);
  WsafConfig big_config = small_table_config();
  big_config.log2_entries = 14;
  WsafTable big{big_config};
  EXPECT_EQ(publisher.effective_every_packets(big),
            (std::uint64_t{1} << 14) * 8);
}

TEST(ViewPublisher, TimeCadencePublishesOnTraceTime) {
  WsafTable table{small_table_config()};
  ViewPublishConfig config;
  config.publish_every_packets = std::uint64_t{1} << 40;  // never by count
  config.publish_every_ns = 1'000;
  ViewPublisher publisher{config};
  EXPECT_TRUE(publisher.maybe_publish(table, 0));     // first tick primes
  EXPECT_FALSE(publisher.maybe_publish(table, 500));  // interval not elapsed
  EXPECT_FALSE(publisher.maybe_publish(table, 999));
  EXPECT_TRUE(publisher.maybe_publish(table, 1'000));
  EXPECT_FALSE(publisher.maybe_publish(table, 1'500));
  EXPECT_TRUE(publisher.maybe_publish(table, 2'100));
  EXPECT_EQ(publisher.publishes(), 3u);
}

TEST(ViewPublisher, PublishedViewMirrorsTheTable) {
  WsafConfig table_config = small_table_config();
  WsafTable table{table_config};
  for (std::uint32_t n = 0; n < 20; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(table_config.seed),
                     static_cast<double>(n + 1), (n + 1) * 100.0, n * 10);
  }
  ViewPublishConfig config;
  config.shard = 3;
  ViewPublisher publisher{config};
  ASSERT_TRUE(publisher.publish_now(table, /*now_ns=*/500));

  const auto view = publisher.channel().read();
  ASSERT_TRUE(view);
  EXPECT_EQ(view->shard, 3u);
  EXPECT_EQ(view->as_of_ns, 500u);
  EXPECT_GT(view->publish_wall_ns, 0u);
  ASSERT_EQ(view->entries.size(), table.live_entries().size());
  for (const auto& e : view->entries) {
    const auto truth = table.lookup(e.key, e.flow_hash);
    ASSERT_TRUE(truth.has_value()) << e.key.to_string();
    EXPECT_DOUBLE_EQ(e.packets, truth->packets);
    EXPECT_DOUBLE_EQ(e.bytes, truth->bytes);
    EXPECT_EQ(e.first_seen_ns, truth->first_seen_ns);
    EXPECT_EQ(e.last_update_ns, truth->last_update_ns);
  }
}

// --- QueryEngine over a scalar engine: live answers == stopped scan --------

EngineConfig scalar_engine_config(EvictionPolicy eviction) {
  EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 12;
  config.wsaf.eviction = eviction;
  config.publish_views = true;
  config.publish.publish_every_packets = 1 << 12;
  return config;
}

class ScalarQueryDifferential
    : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(ScalarQueryDifferential, AnswersMatchStoppedEngineScan) {
  InstaMeasure engine{scalar_engine_config(GetParam())};
  ASSERT_NE(engine.view_channel(), nullptr);

  // 12 elephants with well-separated sizes plus a mice tail.
  std::uint64_t ts = 0;
  for (std::uint32_t n = 0; n < 12; ++n) {
    const auto key = key_n(n);
    for (std::uint32_t i = 0; i < 4'000 + 4'000 * n; ++i) {
      engine.process(packet(key, ts += 100));
    }
  }
  for (std::uint32_t n = 100; n < 400; ++n) {
    engine.process(packet(key_n(n), ts += 100));
  }
  ASSERT_TRUE(engine.publish_view_now());

  QueryEngine queries{{engine.view_channel()}};
  const auto& wsaf = engine.wsaf();
  const auto seed = engine.config().wsaf.seed;

  // Flow counts: every live table entry is queryable with exact values.
  EXPECT_EQ(queries.active_flow_count(), wsaf.live_entries().size());
  for (const auto* entry : wsaf.live_entries()) {
    const auto answer = queries.flow(entry->key);
    ASSERT_TRUE(answer.has_value()) << entry->key.to_string();
    EXPECT_DOUBLE_EQ(answer->packets, entry->packets);
    EXPECT_DOUBLE_EQ(answer->bytes, entry->bytes);
  }
  EXPECT_FALSE(queries.flow(key_n(9'999)).has_value());

  // Top-K: identical value sequences to the table scan, both metrics.
  for (const auto metric : {TopKMetric::kPackets, TopKMetric::kBytes}) {
    const auto live = queries.top_k(10, metric);
    const auto scan = top_k(wsaf, 10, metric);
    ASSERT_EQ(live.size(), scan.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      EXPECT_EQ(live[i].key, scan[i].key) << "rank " << i;
      EXPECT_DOUBLE_EQ(live[i].packets, scan[i].packets);
      EXPECT_DOUBLE_EQ(live[i].bytes, scan[i].bytes);
    }
  }

  // Heavy hitters: same set as filtering the stopped table directly.
  const double threshold = 10'000.0;
  const auto hh = queries.heavy_hitters(threshold, TopKMetric::kPackets);
  std::size_t expected = 0;
  for (const auto* entry : wsaf.live_entries()) {
    if (entry->packets >= threshold) ++expected;
  }
  EXPECT_EQ(hh.size(), expected);
  for (const auto& e : hh) {
    const auto truth = wsaf.lookup(e.key, e.key.hash(seed));
    ASSERT_TRUE(truth.has_value());
    EXPECT_DOUBLE_EQ(e.packets, truth->packets);
    EXPECT_GE(e.packets, threshold);
  }

  EXPECT_GE(queries.merges(), 4u);
  EXPECT_LT(queries.snapshot_age_ns(), std::uint64_t{60} * 1'000'000'000);
  ASSERT_EQ(queries.versions().size(), 1u);
  EXPECT_GE(queries.versions()[0], 1u);
}

INSTANTIATE_TEST_SUITE_P(EvictionPolicies, ScalarQueryDifferential,
                         ::testing::Values(EvictionPolicy::kSecondChance,
                                           EvictionPolicy::kStalest));

TEST(QueryEngine, UnpublishedShardReportsUnboundedAge) {
  SnapshotChannel published, silent;
  publish_marker(published, 1.0);
  QueryEngine queries{{&published, &silent}};
  EXPECT_EQ(queries.snapshot_age_ns(), UINT64_MAX);
  EXPECT_EQ(queries.versions(), (std::vector<std::uint64_t>{1, 0}));
  // Queries still answer from the shards that have published.
  EXPECT_EQ(queries.active_flow_count(), 1u);
}

// --- QueryEngine over a multicore engine -----------------------------------

class MultiCoreQueryDifferential
    : public ::testing::TestWithParam<EvictionPolicy> {};

TEST_P(MultiCoreQueryDifferential, AnswersMatchStoppedEngineScan) {
  trace::TraceConfig trace_config;
  trace_config.duration_s = 1.0;
  trace_config.tiers = {{4, 20'000, 40'000}, {40, 1'000, 4'000}};
  trace_config.mice = {20'000, 1.0, 30};
  trace_config.seed = 77;
  const auto trace = trace::generate(trace_config);

  runtime::MultiCoreConfig config;
  config.workers = 4;
  config.queue_capacity = 1 << 12;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 14;
  config.engine.wsaf.eviction = GetParam();
  runtime::MultiCoreEngine engine{config};
  const auto run_stats = engine.run(trace);
  const auto* queries = engine.queries();
  ASSERT_NE(queries, nullptr);
  EXPECT_EQ(queries->shards(), 4u);
  // The end-of-run drain publishes a final view per worker, so the query
  // plane reflects every processed packet.
  EXPECT_GE(run_stats.views_published, 4u);

  std::size_t live_total = 0;
  for (unsigned w = 0; w < engine.workers(); ++w) {
    live_total += engine.engine(w).wsaf().live_entries().size();
  }
  EXPECT_EQ(queries->active_flow_count(), live_total);

  // Top-K value sequences equal the stopped-engine merged scan.
  const auto live_top = queries->top_k(20, TopKMetric::kPackets);
  const auto scan_top = engine.top_k_packets(20);
  ASSERT_EQ(live_top.size(), scan_top.size());
  for (std::size_t i = 0; i < live_top.size(); ++i) {
    EXPECT_DOUBLE_EQ(live_top[i].packets, scan_top[i].packets) << "rank " << i;
  }

  // Heavy hitters agree with per-shard table lookups, exactly.
  const auto hh = queries->heavy_hitters(5'000.0, TopKMetric::kPackets);
  std::size_t expected = 0;
  for (unsigned w = 0; w < engine.workers(); ++w) {
    for (const auto* entry : engine.engine(w).wsaf().live_entries()) {
      if (entry->packets >= 5'000.0) ++expected;
    }
  }
  EXPECT_EQ(hh.size(), expected);
  for (const auto& e : hh) {
    const auto& shard = engine.engine(engine.worker_of(e.key));
    // Each worker hashes with its own seed; look up in its domain.
    const auto truth =
        shard.wsaf().lookup(e.key, e.key.hash(shard.config().wsaf.seed));
    ASSERT_TRUE(truth.has_value()) << e.key.to_string();
    EXPECT_DOUBLE_EQ(e.packets, truth->packets);
    EXPECT_DOUBLE_EQ(e.bytes, truth->bytes);
  }
}

INSTANTIATE_TEST_SUITE_P(EvictionPolicies, MultiCoreQueryDifferential,
                         ::testing::Values(EvictionPolicy::kSecondChance,
                                           EvictionPolicy::kStalest));

// --- TopKTracker / view equivalence ----------------------------------------

TEST(TopKTracker, TrackedSetMatchesViewTopK) {
  // With no WSAF evictions the streaming tracker and a post-hoc view scan
  // must rank the same flows with the same running totals.
  EngineConfig config = scalar_engine_config(EvictionPolicy::kSecondChance);
  config.track_top_k = 8;
  InstaMeasure engine{config};
  std::uint64_t ts = 0;
  for (std::uint32_t n = 0; n < 16; ++n) {
    const auto key = key_n(n);
    for (std::uint32_t i = 0; i < 3'000 + 2'500 * n; ++i) {
      engine.process(packet(key, ts += 100));
    }
  }
  ASSERT_TRUE(engine.publish_view_now());
  const auto channel_view = engine.view_channel()->read();
  ASSERT_TRUE(channel_view);

  const auto tracked = engine.current_top_k();
  const WsafView* views[] = {&*channel_view};
  const auto scanned = view_top_k(views, 8, TopKMetric::kPackets);
  ASSERT_EQ(tracked.size(), scanned.size());
  for (std::size_t i = 0; i < tracked.size(); ++i) {
    EXPECT_EQ(tracked[i].first, scanned[i].key) << "rank " << i;
    EXPECT_DOUBLE_EQ(tracked[i].second, scanned[i].packets);
  }

  // And the tracker's own view export ranks identically.
  const auto tracker_view = [&] {
    TopKTracker shadow{8};
    for (const auto& e : channel_view->entries) {
      shadow.update(e.key, e.flow_hash, e.packets, e.bytes, e.first_seen_ns,
                    e.last_update_ns);
    }
    return shadow.as_view();
  }();
  ASSERT_EQ(tracker_view.entries.size(), scanned.size());
  for (std::size_t i = 0; i < scanned.size(); ++i) {
    EXPECT_EQ(tracker_view.entries[i].key, scanned[i].key) << "rank " << i;
    EXPECT_DOUBLE_EQ(tracker_view.entries[i].packets, scanned[i].packets);
  }
}

// --- Concurrent ingest/query hammer (TSan target) --------------------------

TEST(QueryPlane, ConcurrentQueriesDuringIngest) {
  trace::TraceConfig trace_config;
  trace_config.duration_s = 1.0;
  trace_config.tiers = {{4, 20'000, 40'000}, {40, 1'000, 4'000}};
  trace_config.mice = {30'000, 1.0, 30};
  trace_config.seed = 99;
  const auto trace = trace::generate(trace_config);

  runtime::MultiCoreConfig config;
  config.workers = 4;
  config.queue_capacity = 1 << 12;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 14;
  // Publish often so readers race live commits, not just the final drain.
  config.query_plane.publish_every_packets = 1 << 10;
  runtime::MultiCoreEngine engine{config};
  const auto* queries = engine.queries();
  ASSERT_NE(queries, nullptr);

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};
  auto reader = [&] {
    const auto probe = trace.packets.front().key;
    while (!done.load(std::memory_order_acquire)) {
      const auto top = queries->top_k(5, TopKMetric::kPackets);
      for (std::size_t i = 1; i < top.size(); ++i) {
        // Each answer must be internally consistent: descending order.
        EXPECT_GE(top[i - 1].packets, top[i].packets);
      }
      (void)queries->flow(probe);
      (void)queries->heavy_hitters(1'000.0, TopKMetric::kPackets);
      (void)queries->active_flow_count();
      (void)queries->snapshot_age_ns();
      (void)queries->versions();
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1{reader}, r2{reader};
  // Pace the replay so ingest and queries genuinely overlap.
  const auto stats = engine.run(trace, /*pace_pps=*/1.5e6);
  done.store(true, std::memory_order_release);
  r1.join();
  r2.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(stats.views_published, 4u);
  EXPECT_EQ(stats.processed, trace.packets.size());

  // After the run the final views reflect the complete replay: the live
  // answer now equals the stopped-engine scan.
  const auto live_top = queries->top_k(10, TopKMetric::kPackets);
  const auto scan_top = engine.top_k_packets(10);
  ASSERT_EQ(live_top.size(), scan_top.size());
  for (std::size_t i = 0; i < live_top.size(); ++i) {
    EXPECT_DOUBLE_EQ(live_top[i].packets, scan_top[i].packets) << "rank " << i;
  }
  EXPECT_GE(queries->merges(), reads.load());
}

}  // namespace
}  // namespace instameasure::core
