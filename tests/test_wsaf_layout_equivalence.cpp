// Cross-layout differential suite: the contract that makes the bucketed
// WSAF layout shippable. kScalarProbe and kBucketed differ in probe and
// eviction *granularity* (eviction-policy v1 vs v2), so exact equality is
// asserted where the contract promises it:
//
//  * zero-eviction regime (the common case the paper sizes for): identical
//    detection sets, query results, live-entry sets, and top-K across Zipf
//    traces × seeds × eviction policies — asserted with evictions==0 and
//    rejected==0 so a sizing regression cannot silently weaken the test;
//  * capacity-identical geometry (log2_entries=4, probe_limit=16: the whole
//    table is one probe window in BOTH layouts): identical behaviour even
//    under overflow/reject pressure and idle-timeout expiry;
//  * ragged occupancy with bucket-overflow probing: every flow findable in
//    both layouts at high, uneven load;
//  * sweep_expired() interleavings: partial sweeps hit different slots in
//    different layouts, but the *live* view must never diverge.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "core/instameasure.h"
#include "trace/generator.h"

namespace instameasure::core {
namespace {

EngineConfig engine_config(WsafLayout layout, EvictionPolicy policy) {
  EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  // ~8k distinct flows into 2^15 slots with a 32-slot / 2-bucket probe
  // window: load ~0.25, so neither layout ever evicts or rejects (asserted
  // by the tests — the zero-eviction regime is where exact cross-layout
  // equality is the contract).
  config.wsaf.log2_entries = 15;
  config.wsaf.probe_limit = 32;
  config.wsaf.layout = layout;
  config.wsaf.eviction = policy;
  config.heavy_hitter.packet_threshold = 5'000;
  config.heavy_hitter.byte_threshold = 4'000'000;
  config.track_top_k = 5;
  return config;
}

trace::Trace zipf_trace(std::uint64_t seed) {
  trace::TraceConfig config;
  config.name = "layout-equivalence-" + std::to_string(seed);
  config.duration_s = 1.0;
  config.tiers = {{3, 15'000, 30'000}, {25, 1'000, 4'000}};
  config.mice = {8'000, 1.1, 40};
  config.seed = seed;
  return trace::generate(config);
}

[[nodiscard]] std::vector<netio::FlowKey> sample_keys(
    const trace::Trace& trace, std::size_t limit = 400) {
  std::unordered_set<std::uint64_t> seen;
  std::vector<netio::FlowKey> keys;
  for (const auto& rec : trace.packets) {
    if (keys.size() >= limit) break;
    if (seen.insert(rec.key.hash()).second) keys.push_back(rec.key);
  }
  return keys;
}

// Layout-agnostic image of the resident working set: slot numbers differ
// between layouts by design, so equality is over the sorted logical
// entries, not snapshot bytes.
using LogicalEntry =
    std::tuple<netio::FlowKey, double, double, std::uint64_t, std::uint64_t>;

[[nodiscard]] std::vector<LogicalEntry> logical_entries(const WsafTable& table,
                                                        std::uint64_t now_ns) {
  std::vector<LogicalEntry> out;
  for (const auto* e : table.live_entries(now_ns)) {
    out.emplace_back(e->key, e->packets, e->bytes, e->first_seen_ns,
                     e->last_update_ns);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void expect_zero_pressure(const InstaMeasure& engine, const char* which) {
  // The exact-equality contract only holds when nothing was displaced; if a
  // trace/sizing change makes this fire, re-size — do not weaken the test.
  EXPECT_EQ(engine.wsaf().stats().evictions, 0u) << which;
  EXPECT_EQ(engine.wsaf().stats().rejected, 0u) << which;
}

void expect_equivalent(const InstaMeasure& scalar, const InstaMeasure& bucketed,
                       const trace::Trace& trace, const std::string& tag) {
  SCOPED_TRACE(tag);
  expect_zero_pressure(scalar, "scalar");
  expect_zero_pressure(bucketed, "bucketed");

  EXPECT_EQ(scalar.packets_processed(), bucketed.packets_processed());
  const auto& ws = scalar.wsaf().stats();
  const auto& wb = bucketed.wsaf().stats();
  EXPECT_EQ(ws.accumulates, wb.accumulates);
  EXPECT_EQ(ws.inserts, wb.inserts);
  EXPECT_EQ(ws.updates, wb.updates);
  // NOT compared: stats.probes — its unit is slots in kScalarProbe and
  // buckets in kBucketed (see docs/OBSERVABILITY.md).
  EXPECT_EQ(scalar.wsaf().occupancy(), bucketed.wsaf().occupancy());

  // Full working set, entry for entry.
  const auto now = std::max(scalar.wsaf().latest_ns(),
                            bucketed.wsaf().latest_ns());
  EXPECT_EQ(logical_entries(scalar.wsaf(), now),
            logical_entries(bucketed.wsaf(), now));

  // Detection log: same flows, same instants, same values, same order.
  const auto& ds = scalar.detections();
  const auto& db = bucketed.detections();
  ASSERT_EQ(ds.size(), db.size());
  for (std::size_t i = 0; i < ds.size(); ++i) {
    EXPECT_EQ(ds[i].key, db[i].key) << "detection " << i;
    EXPECT_EQ(ds[i].detected_at_ns, db[i].detected_at_ns) << "detection " << i;
    EXPECT_DOUBLE_EQ(ds[i].value_at_detection, db[i].value_at_detection)
        << "detection " << i;
    EXPECT_EQ(ds[i].metric, db[i].metric) << "detection " << i;
  }

  // Streaming top-K saw the same accumulate sequence.
  const auto ts = scalar.current_top_k();
  const auto tb = bucketed.current_top_k();
  ASSERT_EQ(ts.size(), tb.size());
  for (std::size_t i = 0; i < ts.size(); ++i) {
    EXPECT_EQ(ts[i].first, tb[i].first) << "top-k rank " << i;
    EXPECT_DOUBLE_EQ(ts[i].second, tb[i].second) << "top-k rank " << i;
  }

  // Per-flow online decode, exactly.
  for (const auto& key : sample_keys(trace)) {
    const auto es = scalar.query(key);
    const auto eb = bucketed.query(key);
    EXPECT_EQ(es.in_wsaf, eb.in_wsaf) << key.to_string();
    EXPECT_DOUBLE_EQ(es.packets, eb.packets) << key.to_string();
    EXPECT_DOUBLE_EQ(es.bytes, eb.bytes) << key.to_string();
  }
}

[[nodiscard]] InstaMeasure run_engine(const trace::Trace& trace,
                                      WsafLayout layout,
                                      EvictionPolicy policy) {
  InstaMeasure engine{engine_config(layout, policy)};
  for (const auto& rec : trace.packets) engine.process(rec);
  return engine;
}

// 3 randomized Zipf traces × 3 eviction policies = 9 scalar-vs-bucketed
// comparisons over the full engine pipeline.
TEST(WsafLayoutEquivalence, ZipfTracesAcrossSeedsAndEvictionPolicies) {
  for (const std::uint64_t seed : {11u, 22u, 33u}) {
    const auto trace = zipf_trace(seed);
    for (const auto policy : {EvictionPolicy::kSecondChance,
                              EvictionPolicy::kStalest, EvictionPolicy::kNone}) {
      const auto scalar =
          run_engine(trace, WsafLayout::kScalarProbe, policy);
      ASSERT_FALSE(scalar.detections().empty())
          << "trace seed " << seed
          << " must raise detections or the differential test has no teeth";
      const auto bucketed = run_engine(trace, WsafLayout::kBucketed, policy);
      expect_equivalent(scalar, bucketed, trace,
                        "seed=" + std::to_string(seed) +
                            " policy=" + std::to_string(static_cast<int>(policy)));
    }
  }
}

// The batched pipeline and the bucketed layout compose: process_batch() on
// a bucketed engine must stay bit-equivalent to scalar process() calls on
// the SAME layout (snapshots comparable within one layout).
TEST(WsafLayoutEquivalence, BatchProcessingMatchesScalarInBucketedLayout) {
  const auto trace = zipf_trace(44);
  const auto one_by_one =
      run_engine(trace, WsafLayout::kBucketed, EvictionPolicy::kSecondChance);
  InstaMeasure batched{
      engine_config(WsafLayout::kBucketed, EvictionPolicy::kSecondChance)};
  const std::span<const netio::PacketRecord> all{trace.packets};
  for (std::size_t off = 0; off < all.size(); off += 64) {
    batched.process_batch(
        all.subspan(off, std::min<std::size_t>(64, all.size() - off)));
  }
  const auto& ws = one_by_one.wsaf().stats();
  const auto& wbat = batched.wsaf().stats();
  EXPECT_EQ(ws.accumulates, wbat.accumulates);
  EXPECT_EQ(ws.inserts, wbat.inserts);
  EXPECT_EQ(ws.probes, wbat.probes);  // same layout: same unit (buckets)
  EXPECT_EQ(ws.tag_collisions, wbat.tag_collisions);
  const auto now = one_by_one.wsaf().latest_ns();
  EXPECT_EQ(logical_entries(one_by_one.wsaf(), now),
            logical_entries(batched.wsaf(), now));
}

// --- Table-level differentials --------------------------------------------

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, n + 7, static_cast<std::uint16_t>(n), 80, 6};
}

WsafConfig table_config(WsafLayout layout, unsigned log2, unsigned probe) {
  WsafConfig config;
  config.log2_entries = log2;
  config.probe_limit = probe;
  config.layout = layout;
  return config;
}

// log2_entries=4 + probe_limit=16: capacity is exactly 16 in BOTH layouts
// (the scalar triangular sequence visits all 16 slots; the bucketed table
// is a single bucket). With kNone, overflow behaviour — who gets in, who
// gets rejected — must be identical even though the layouts place entries
// in different slots.
TEST(WsafLayoutEquivalence, RejectPolicyKeepsIdenticalResidentSetsUnderOverflow) {
  auto cfg = table_config(WsafLayout::kScalarProbe, 4, 16);
  cfg.eviction = EvictionPolicy::kNone;
  WsafTable s{cfg};
  cfg.layout = WsafLayout::kBucketed;
  WsafTable b{cfg};

  for (std::uint32_t n = 0; n < 40; ++n) {
    const auto key = key_n(n);
    const auto h = key.hash(cfg.seed);
    s.accumulate(key, h, 1.0, 100.0, 10 + n);
    b.accumulate(key, h, 1.0, 100.0, 10 + n);
  }
  EXPECT_EQ(s.occupancy(), 16u);
  EXPECT_EQ(b.occupancy(), 16u);
  EXPECT_EQ(s.stats().rejected, b.stats().rejected);
  EXPECT_EQ(s.stats().rejected, 24u);
  for (std::uint32_t n = 0; n < 40; ++n) {
    const auto key = key_n(n);
    const auto h = key.hash(cfg.seed);
    const auto es = s.lookup(key, h, 10 + 40);
    const auto eb = b.lookup(key, h, 10 + 40);
    ASSERT_EQ(es.has_value(), eb.has_value()) << "flow " << n;
    // First-come-first-kept: with kNone the first 16 flows are resident.
    EXPECT_EQ(es.has_value(), n < 16) << "flow " << n;
  }
}

// Ragged occupancy at high load: 700 flows into 1024 slots (64 buckets)
// leaves some buckets overflowing into their neighbours while others sit
// near-empty. Every flow must remain findable, with identical counters, in
// both layouts — this is the bucket-overflow probe path under real skew.
TEST(WsafLayoutEquivalence, RaggedOccupancyKeepsEveryFlowFindable) {
  WsafTable s{table_config(WsafLayout::kScalarProbe, 10, 48)};
  WsafTable b{table_config(WsafLayout::kBucketed, 10, 48)};
  const auto seed = s.config().seed;
  constexpr std::uint32_t kFlows = 700;
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    const auto h = key.hash(seed);
    // Skewed update counts: flow n gets 1 + n % 7 accumulates.
    for (std::uint32_t r = 0; r <= n % 7; ++r) {
      s.accumulate(key, h, 2.0, 64.0, 100 + n + r);
      b.accumulate(key, h, 2.0, 64.0, 100 + n + r);
    }
  }
  ASSERT_EQ(s.stats().evictions, 0u);
  ASSERT_EQ(b.stats().evictions, 0u);
  ASSERT_EQ(s.stats().rejected, 0u);
  ASSERT_EQ(b.stats().rejected, 0u);
  EXPECT_EQ(s.occupancy(), kFlows);
  EXPECT_EQ(b.occupancy(), kFlows);
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    const auto h = key.hash(seed);
    const auto es = s.lookup(key, h, 2'000);
    const auto eb = b.lookup(key, h, 2'000);
    ASSERT_TRUE(es.has_value()) << "scalar lost flow " << n;
    ASSERT_TRUE(eb.has_value()) << "bucketed lost flow " << n;
    EXPECT_DOUBLE_EQ(es->packets, eb->packets) << "flow " << n;
    EXPECT_DOUBLE_EQ(es->bytes, eb->bytes) << "flow " << n;
    EXPECT_EQ(es->last_update_ns, eb->last_update_ns) << "flow " << n;
  }
}

// Idle-timeout expiry + interleaved partial sweeps. Partial sweep_expired()
// calls walk slots_ linearly, and the same flow lives in DIFFERENT slots in
// the two layouts — so which expired entry is physically reclaimed first
// differs. The contract is that the LIVE view (live_entries, lookups) never
// diverges at any interleaving point, and that occupancy reconverges after
// a full sweep.
TEST(WsafLayoutEquivalence, SweepInterleavingsNeverDivergeTheLiveView) {
  auto cfg_s = table_config(WsafLayout::kScalarProbe, 8, 16);
  cfg_s.idle_timeout_ns = 1'000;
  auto cfg_b = cfg_s;
  cfg_b.layout = WsafLayout::kBucketed;
  WsafTable s{cfg_s};
  WsafTable b{cfg_b};
  const auto seed = cfg_s.seed;

  // 150 flows with staggered last-update times: flow n last touched at
  // t = 100 + 2n, so advancing time expires them oldest-first. The fill
  // spans 100..398 — well under the 1000ns timeout, so nothing expires
  // mid-fill and both tables start the sweep phase fully populated.
  constexpr std::uint32_t kFlows = 150;
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    const auto h = key.hash(seed);
    s.accumulate(key, h, 1.0, 64.0, 100 + 2 * n);
    b.accumulate(key, h, 1.0, 64.0, 100 + 2 * n);
  }
  ASSERT_EQ(s.occupancy(), kFlows);
  ASSERT_EQ(b.occupancy(), kFlows);

  // Advance "now" in steps; at each step run a few small partial sweeps in
  // both tables and compare the live view (sets must match even while the
  // physical reclaim order differs).
  for (const std::uint64_t now : {700u, 1'300u, 1'650u, 2'000u}) {
    for (int burst = 0; burst < 3; ++burst) {
      s.sweep_expired(now, /*max_slots=*/7);
      b.sweep_expired(now, /*max_slots=*/7);
      EXPECT_EQ(logical_entries(s, now), logical_entries(b, now))
          << "now=" << now << " burst=" << burst;
    }
    // Spot-check lookups straddling the expiry boundary at this instant.
    for (const std::uint32_t n : {0u, 25u, 60u, 100u, 149u}) {
      const auto key = key_n(n);
      const auto h = key.hash(seed);
      EXPECT_EQ(s.lookup(key, h, now).has_value(),
                b.lookup(key, h, now).has_value())
          << "now=" << now << " flow " << n;
    }
  }

  // Full sweep: physical state reconverges, not just the live view.
  s.sweep_expired(2'000, 0);
  b.sweep_expired(2'000, 0);
  EXPECT_EQ(s.occupancy(), b.occupancy());
  EXPECT_EQ(s.stats().gc_swept + s.stats().gc_reclaims,
            b.stats().gc_swept + b.stats().gc_reclaims);
  EXPECT_EQ(logical_entries(s, 2'000), logical_entries(b, 2'000));

  // Expired flows must be re-insertable in both layouts (bucketed: sweep
  // must have cleared the tag bitmaps or these inserts collide).
  for (const std::uint32_t n : {0u, 1u, 2u}) {
    const auto key = key_n(n);
    const auto h = key.hash(seed);
    s.accumulate(key, h, 5.0, 64.0, 2'100);
    b.accumulate(key, h, 5.0, 64.0, 2'100);
    const auto es = s.lookup(key, h, 2'100);
    const auto eb = b.lookup(key, h, 2'100);
    ASSERT_TRUE(es && eb) << "flow " << n;
    EXPECT_DOUBLE_EQ(es->packets, 5.0);
    EXPECT_DOUBLE_EQ(eb->packets, 5.0);
  }
}

}  // namespace
}  // namespace instameasure::core
