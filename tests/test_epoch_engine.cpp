#include "core/epoch_engine.h"

#include <gtest/gtest.h>

namespace instameasure::core {
namespace {

EpochConfig small_config(std::uint64_t epoch_ns, bool reset) {
  EpochConfig config;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 12;
  config.epoch_ns = epoch_ns;
  config.snapshot_top_k = 3;
  config.reset_each_epoch = reset;
  return config;
}

netio::PacketRecord packet(std::uint32_t flow, std::uint64_t ts) {
  return netio::PacketRecord{
      ts, netio::FlowKey{flow, ~flow, 80, 443, 6}, 500};
}

TEST(EpochEngine, RotatesAtBoundaries) {
  // 1ms epochs, packets spanning 3.5ms -> 3 boundary rotations + flush.
  EpochEngine engine{small_config(1'000'000, false)};
  for (std::uint64_t i = 0; i < 3'500; ++i) {
    engine.process(packet(7, i * 1'000));
  }
  engine.flush(3'500'000);
  ASSERT_EQ(engine.history().size(), 4u);
  EXPECT_EQ(engine.history()[0].boundary_ns, 1'000'000u);
  EXPECT_EQ(engine.history()[2].boundary_ns, 3'000'000u);
  EXPECT_EQ(engine.history()[3].boundary_ns, 3'500'000u) << "flush boundary";
}

TEST(EpochEngine, PerEpochPacketCounts) {
  EpochEngine engine{small_config(1'000'000, false)};
  for (std::uint64_t i = 0; i < 2'000; ++i) {
    engine.process(packet(7, i * 1'000));  // exactly 1000 packets/epoch
  }
  engine.flush(2'000'000);
  ASSERT_GE(engine.history().size(), 2u);
  EXPECT_EQ(engine.history()[0].packets_processed, 1'000u);
  EXPECT_EQ(engine.history()[1].packets_processed, 1'000u);
}

TEST(EpochEngine, CumulativeModeKeepsCounts) {
  // Paper protocol: counters run for the whole measurement; snapshots are
  // cumulative top-K lists that can only grow.
  EpochEngine engine{small_config(1'000'000, false)};
  for (std::uint64_t i = 0; i < 100'000; ++i) {
    engine.process(packet(9, i * 50));  // 5ms of one elephant
  }
  engine.flush(5'000'000);
  const auto& history = engine.history();
  ASSERT_GE(history.size(), 4u);
  double prev = 0;
  for (const auto& snap : history) {
    if (snap.top_packets.empty()) continue;
    EXPECT_GE(snap.top_packets[0].packets, prev)
        << "cumulative counts are monotone";
    prev = snap.top_packets[0].packets;
  }
  EXPECT_NEAR(history.back().top_packets[0].packets / 100'000.0, 1.0, 0.1);
}

TEST(EpochEngine, IntervalModeResetsCounts) {
  EpochEngine engine{small_config(1'000'000, true)};
  // Flow active only in the first epoch.
  for (std::uint64_t i = 0; i < 20'000; ++i) {
    engine.process(packet(5, i * 40));  // 0..0.8ms
  }
  // Quiet second epoch: a single different mouse packet to advance time.
  engine.process(packet(6, 1'900'000));
  engine.flush(2'000'000);
  ASSERT_GE(engine.history().size(), 2u);
  const auto& first = engine.history()[0];
  const auto& second = engine.history()[1];
  ASSERT_FALSE(first.top_packets.empty());
  EXPECT_GT(first.top_packets[0].packets, 10'000.0);
  // After the reset, the old elephant is gone from the second snapshot.
  for (const auto& item : second.top_packets) {
    EXPECT_NE(item.key.src_ip, 5u);
  }
}

TEST(EpochEngine, TopKOrderingWithinSnapshot) {
  EpochEngine engine{small_config(10'000'000, false)};
  std::uint64_t ts = 0;
  for (int i = 0; i < 30'000; ++i) {
    engine.process(packet(1, ts++));
    if (i % 2 == 0) engine.process(packet(2, ts++));
    if (i % 4 == 0) engine.process(packet(3, ts++));
  }
  engine.flush(ts);
  ASSERT_FALSE(engine.history().empty());
  const auto& top = engine.history().back().top_packets;
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].key.src_ip, 1u);
  EXPECT_EQ(top[1].key.src_ip, 2u);
  EXPECT_EQ(top[2].key.src_ip, 3u);
}

TEST(EpochEngine, QuietGapProducesEmptyEpochs) {
  EpochEngine engine{small_config(1'000'000, false)};
  engine.process(packet(1, 0));
  engine.process(packet(1, 4'500'000));  // 4.5ms later
  engine.flush(5'000'000);
  // Boundaries at 1,2,3,4 ms plus the flush: five snapshots, middle ones
  // with zero packets.
  ASSERT_EQ(engine.history().size(), 5u);
  EXPECT_EQ(engine.history()[1].packets_processed, 0u);
  EXPECT_EQ(engine.history()[2].packets_processed, 0u);
}

}  // namespace
}  // namespace instameasure::core
