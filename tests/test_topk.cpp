#include "core/topk.h"

#include <gtest/gtest.h>

namespace instameasure::core {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, n + 1, 80, 443, 6};
}

WsafTable build_table(std::size_t flows) {
  WsafConfig config;
  config.log2_entries = 10;
  config.probe_limit = 16;
  WsafTable table{config};
  for (std::uint32_t n = 0; n < flows; ++n) {
    const auto key = key_n(n);
    // packets ascending with n, bytes descending: the two rankings differ.
    table.accumulate(key, key.hash(), static_cast<double>(n + 1),
                     static_cast<double>(flows - n) * 100.0, n);
  }
  return table;
}

TEST(TopK, PacketsDescendingOrder) {
  const auto table = build_table(100);
  const auto top = top_k(table, 10, TopKMetric::kPackets);
  ASSERT_EQ(top.size(), 10u);
  for (std::size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].packets, top[i].packets);
  }
  EXPECT_DOUBLE_EQ(top.front().packets, 100.0);
}

TEST(TopK, BytesRankingDiffersFromPackets) {
  const auto table = build_table(100);
  const auto by_pkts = top_k(table, 1, TopKMetric::kPackets);
  const auto by_bytes = top_k(table, 1, TopKMetric::kBytes);
  ASSERT_EQ(by_pkts.size(), 1u);
  ASSERT_EQ(by_bytes.size(), 1u);
  EXPECT_NE(by_pkts.front().key, by_bytes.front().key);
  EXPECT_DOUBLE_EQ(by_bytes.front().bytes, 100.0 * 100.0);
}

TEST(TopK, KLargerThanPopulationReturnsAll) {
  const auto table = build_table(5);
  const auto top = top_k(table, 100, TopKMetric::kPackets);
  EXPECT_EQ(top.size(), 5u);
}

TEST(TopK, EmptyTable) {
  WsafConfig config;
  config.log2_entries = 4;
  const WsafTable table{config};
  EXPECT_TRUE(top_k(table, 10, TopKMetric::kPackets).empty());
}

TEST(TopK, ExactKBoundary) {
  const auto table = build_table(10);
  const auto top = top_k(table, 10, TopKMetric::kPackets);
  EXPECT_EQ(top.size(), 10u);
}

}  // namespace
}  // namespace instameasure::core
