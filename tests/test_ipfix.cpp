#include "netio/ipfix.h"

#include <gtest/gtest.h>

#include "core/wsaf_export.h"

namespace instameasure::netio {
namespace {

IpfixFlowRecord sample_record(std::uint32_t n) {
  IpfixFlowRecord rec;
  rec.key = FlowKey{0xC0A80000 + n, 0x08080808, static_cast<std::uint16_t>(n),
                    443, 6};
  rec.packets = 1000ULL * n + 1;
  rec.octets = 1'000'000ULL * n + 7;
  rec.end_ms = 1'600'000'000'000ULL + n;
  return rec;
}

TEST(Ipfix, RoundTripSingleRecord) {
  const std::vector<IpfixFlowRecord> records{sample_record(1)};
  const auto message = ipfix_encode(records, 1'700'000'000, 42);
  const auto decoded = ipfix_decode(message);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 1u);
  EXPECT_EQ((*decoded)[0], records[0]);
}

TEST(Ipfix, RoundTripManyRecords) {
  std::vector<IpfixFlowRecord> records;
  for (std::uint32_t n = 0; n < 500; ++n) records.push_back(sample_record(n));
  const auto message = ipfix_encode(records, 1, 2);
  const auto decoded = ipfix_decode(message);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->size(), 500u);
  for (std::uint32_t n = 0; n < 500; ++n) {
    EXPECT_EQ((*decoded)[n], records[n]) << "record " << n;
  }
}

TEST(Ipfix, MessageHeaderFields) {
  const std::vector<IpfixFlowRecord> records{sample_record(3)};
  const auto msg = ipfix_encode(records, 0xAABBCCDD, 0x11223344, 0x55667788);
  ASSERT_GE(msg.size(), 16u);
  auto b = [&](std::size_t i) { return std::to_integer<std::uint8_t>(msg[i]); };
  EXPECT_EQ((b(0) << 8) | b(1), kIpfixVersion);
  EXPECT_EQ((b(2) << 8) | b(3), msg.size()) << "message length field";
  EXPECT_EQ(b(4), 0xAA);  // export time, network order
  EXPECT_EQ(b(8), 0x11);  // sequence
  EXPECT_EQ(b(12), 0x55); // domain
}

TEST(Ipfix, EmptyRecordSetRoundTrips) {
  const auto message = ipfix_encode({}, 1, 1);
  const auto decoded = ipfix_decode(message);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->empty());
}

TEST(Ipfix, TooManyRecordsThrows) {
  std::vector<IpfixFlowRecord> records(kIpfixMaxRecordsPerMessage + 1);
  EXPECT_THROW((void)ipfix_encode(records, 1, 1), std::length_error);
}

TEST(Ipfix, ChunkedEncodeSplitsAndRoundTrips) {
  std::vector<IpfixFlowRecord> records;
  for (std::uint32_t n = 0; n < 4'000; ++n) records.push_back(sample_record(n));
  const auto messages = ipfix_encode_chunked(records, 9, 100);
  EXPECT_GE(messages.size(), 3u);
  std::vector<IpfixFlowRecord> all;
  for (const auto& msg : messages) {
    const auto part = ipfix_decode(msg);
    ASSERT_TRUE(part.has_value());
    all.insert(all.end(), part->begin(), part->end());
  }
  ASSERT_EQ(all.size(), records.size());
  EXPECT_EQ(all.front(), records.front());
  EXPECT_EQ(all.back(), records.back());
}

TEST(Ipfix, DecodeRejectsGarbage) {
  std::vector<std::byte> junk(64, std::byte{0x5A});
  EXPECT_FALSE(ipfix_decode(junk).has_value());
  EXPECT_FALSE(ipfix_decode({}).has_value());
}

TEST(Ipfix, DecodeRejectsTruncatedMessage) {
  const std::vector<IpfixFlowRecord> records{sample_record(1)};
  auto message = ipfix_encode(records, 1, 1);
  message.resize(message.size() - 10);
  EXPECT_FALSE(ipfix_decode(message).has_value())
      << "declared length exceeds buffer";
}

TEST(Ipfix, DataBeforeTemplateRejected) {
  // Build a message whose data set precedes any template set.
  const std::vector<IpfixFlowRecord> records{sample_record(1)};
  auto msg = ipfix_encode(records, 1, 1);
  // The encoder emits template (set len 4+4+32=40... computed) first. Swap
  // the two sets: locate them via their ids.
  // Template set starts at 16; read its length.
  auto get16 = [&](std::size_t off) {
    return (std::to_integer<std::uint16_t>(msg[off]) << 8) |
           std::to_integer<std::uint16_t>(msg[off + 1]);
  };
  const std::size_t tmpl_len = get16(18);
  std::vector<std::byte> reordered(msg.begin(), msg.begin() + 16);
  reordered.insert(reordered.end(), msg.begin() + 16 + tmpl_len, msg.end());
  reordered.insert(reordered.end(), msg.begin() + 16,
                   msg.begin() + 16 + tmpl_len);
  EXPECT_FALSE(ipfix_decode(reordered).has_value());
}

TEST(IpfixWsafExport, ExportsLiveEntries) {
  core::WsafConfig config;
  config.log2_entries = 10;
  core::WsafTable table{config};
  for (std::uint32_t n = 0; n < 20; ++n) {
    const FlowKey key{n + 1, ~n, 80, 443, 17};
    table.accumulate(key, key.hash(), 100.4, 50'000.6, n * 1'000'000);
  }
  const auto messages = core::export_wsaf_ipfix(table, 1'700'000'000, 1);
  ASSERT_EQ(messages.size(), 1u);
  const auto decoded = ipfix_decode(messages[0]);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 20u);
  // Counters round to nearest; timestamps convert ns -> ms.
  bool found = false;
  for (const auto& rec : *decoded) {
    if (rec.key.src_ip == 5 + 1 && rec.key.proto == 17) {
      EXPECT_EQ(rec.packets, 100u);
      EXPECT_EQ(rec.octets, 50'001u);
      EXPECT_EQ(rec.end_ms, 5u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST(IpfixWsafExport, LargeTableChunks) {
  core::WsafConfig config;
  config.log2_entries = 13;
  core::WsafTable table{config};
  for (std::uint32_t n = 0; n < 5'000; ++n) {
    const FlowKey key{n + 1, ~n, 80, 443, 6};
    table.accumulate(key, key.hash(), 1.0, 100.0, n);
  }
  const auto messages = core::export_wsaf_ipfix(table, 1, 1);
  EXPECT_GE(messages.size(), 3u);
  std::size_t total = 0;
  for (const auto& msg : messages) {
    const auto part = ipfix_decode(msg);
    ASSERT_TRUE(part.has_value());
    total += part->size();
  }
  EXPECT_EQ(total, table.occupancy());
}

}  // namespace
}  // namespace instameasure::netio
