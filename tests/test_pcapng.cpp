#include "netio/pcapng.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "netio/codec.h"

namespace instameasure::netio {
namespace {

class PcapngTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("im_pcapng_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".pcapng"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

PacketRecord make_record(std::uint64_t ts_ns, std::uint16_t sport) {
  PacketRecord rec;
  rec.timestamp_ns = ts_ns;
  rec.key = FlowKey{0x0A00000A, 0x0A00000B, sport, 443,
                    static_cast<std::uint8_t>(IpProto::kUdp)};
  rec.wire_len = 300;
  return rec;
}

TEST_F(PcapngTest, RoundTripPreservesRecords) {
  {
    PcapngWriter writer{path_};
    for (int i = 0; i < 50; ++i) {
      writer.write_record(
          make_record(1'000'000ULL * i + 7, static_cast<std::uint16_t>(i + 1)));
    }
    EXPECT_EQ(writer.packets_written(), 50u);
  }
  PcapngReader reader{path_};
  for (int i = 0; i < 50; ++i) {
    const auto rec = reader.next_record();
    ASSERT_TRUE(rec.has_value()) << "packet " << i;
    EXPECT_EQ(rec->timestamp_ns, 1'000'000ULL * i + 7);
    EXPECT_EQ(rec->key.src_port, i + 1);
    EXPECT_EQ(rec->wire_len, 300);
  }
  EXPECT_FALSE(reader.next_record().has_value());
}

TEST_F(PcapngTest, NanosecondTimestampSurvives) {
  {
    PcapngWriter writer{path_};
    writer.write_record(make_record(123'456'789'123ULL, 5));
  }
  PcapngReader reader{path_};
  const auto rec = reader.next_record();
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->timestamp_ns, 123'456'789'123ULL);
}

TEST_F(PcapngTest, FormatSniffingDistinguishesFormats) {
  {
    PcapngWriter writer{path_};
    writer.write_record(make_record(1, 1));
  }
  EXPECT_TRUE(is_pcapng_file(path_));

  PacketVector packets{make_record(1, 1)};
  save_pcap(path_, packets);
  EXPECT_FALSE(is_pcapng_file(path_));
}

TEST_F(PcapngTest, LoadCaptureHandlesBothFormats) {
  PacketVector packets;
  for (int i = 0; i < 10; ++i) {
    packets.push_back(make_record(i * 1000, static_cast<std::uint16_t>(i + 1)));
  }
  // Classic pcap.
  save_pcap(path_, packets);
  EXPECT_EQ(load_capture(path_).size(), 10u);
  // pcapng.
  {
    PcapngWriter writer{path_};
    for (const auto& rec : packets) writer.write_record(rec);
  }
  const auto loaded = load_capture(path_);
  ASSERT_EQ(loaded.size(), 10u);
  EXPECT_EQ(loaded[3].key, packets[3].key);
}

TEST_F(PcapngTest, UnknownBlocksAreSkipped) {
  {
    PcapngWriter writer{path_};
    writer.write_record(make_record(1, 9));
  }
  // Append a bogus-but-well-formed block type 0x99 then another packet via
  // manual EPB construction is complex; instead prepend-append style:
  // rewrite file with an unknown block between SHB/IDB and the EPB.
  // Simpler: append an unknown block at the end; reader must hit EOF
  // cleanly after skipping it.
  {
    std::ofstream out{path_, std::ios::binary | std::ios::app};
    const std::uint32_t type = 0x99;
    const std::uint32_t total = 16;  // header + 4 body + trailer
    const std::uint32_t body = 0xDEADBEEF;
    out.write(reinterpret_cast<const char*>(&type), 4);
    out.write(reinterpret_cast<const char*>(&total), 4);
    out.write(reinterpret_cast<const char*>(&body), 4);
    out.write(reinterpret_cast<const char*>(&total), 4);
  }
  PcapngReader reader{path_};
  EXPECT_TRUE(reader.next_record().has_value());
  EXPECT_FALSE(reader.next_record().has_value()) << "unknown block skipped";
}

TEST_F(PcapngTest, MicrosecondDefaultResolution) {
  // Hand-write a pcapng whose IDB has no if_tsresol option: timestamps are
  // then microseconds.
  {
    std::ofstream out{path_, std::ios::binary};
    auto w32 = [&](std::uint32_t v) {
      out.write(reinterpret_cast<const char*>(&v), 4);
    };
    auto w16 = [&](std::uint16_t v) {
      out.write(reinterpret_cast<const char*>(&v), 2);
    };
    // SHB
    w32(kPcapngShb);
    w32(28);
    w32(kByteOrderMagic);
    w16(1);
    w16(0);
    w32(0xffffffff);
    w32(0xffffffff);
    w32(28);
    // IDB without options
    w32(kPcapngIdb);
    w32(20);
    w16(1);  // ethernet
    w16(0);
    w32(65535);
    w32(20);
    // EPB: ts = 1,500,000 us = 1.5s
    const auto frame = encode_frame(
        FlowKey{1, 2, 3, 4, static_cast<std::uint8_t>(IpProto::kTcp)}, 0);
    const auto padded = (frame.size() + 3) & ~std::size_t{3};
    const auto total = static_cast<std::uint32_t>(32 + padded);
    w32(kPcapngEpb);
    w32(total);
    w32(0);          // iface
    w32(0);          // ts high
    w32(1'500'000);  // ts low
    w32(static_cast<std::uint32_t>(frame.size()));
    w32(static_cast<std::uint32_t>(frame.size()));
    out.write(reinterpret_cast<const char*>(frame.data()),
              static_cast<std::streamsize>(frame.size()));
    for (std::size_t i = frame.size(); i < padded; ++i) out.put(0);
    w32(total);
  }
  PcapngReader reader{path_};
  const auto pkt = reader.next();
  ASSERT_TRUE(pkt.has_value());
  EXPECT_EQ(pkt->timestamp_ns, 1'500'000'000ULL);
}

TEST_F(PcapngTest, NotPcapngThrows) {
  {
    std::ofstream out{path_, std::ios::binary};
    out << "garbage bytes here, definitely not a capture";
  }
  EXPECT_THROW(PcapngReader{path_}, std::runtime_error);
}

TEST_F(PcapngTest, TruncatedBlockThrows) {
  {
    PcapngWriter writer{path_};
    writer.write_record(make_record(1, 1));
  }
  std::filesystem::resize_file(path_,
                               std::filesystem::file_size(path_) - 6);
  PcapngReader reader{path_};
  EXPECT_THROW((void)reader.next(), std::runtime_error);
}

}  // namespace
}  // namespace instameasure::netio
