#include "trace/generator.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "analysis/ground_truth.h"

namespace instameasure::trace {
namespace {

TraceConfig tiny_config() {
  TraceConfig config;
  config.name = "tiny";
  config.duration_s = 2.0;
  config.tiers = {{5, 1000, 2000}, {50, 50, 200}};
  config.mice = {2000, 1.0, 20};
  config.seed = 123;
  return config;
}

TEST(Generator, Deterministic) {
  const auto a = generate(tiny_config());
  const auto b = generate(tiny_config());
  ASSERT_EQ(a.packets.size(), b.packets.size());
  EXPECT_EQ(a.packets.front(), b.packets.front());
  EXPECT_EQ(a.packets.back(), b.packets.back());
}

TEST(Generator, PacketsSortedByTimestamp) {
  const auto trace = generate(tiny_config());
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    EXPECT_LE(trace.packets[i - 1].timestamp_ns, trace.packets[i].timestamp_ns);
  }
}

TEST(Generator, FlowPopulationMatchesConfig) {
  const auto trace = generate(tiny_config());
  const analysis::GroundTruth truth{trace};
  // 5 + 50 tier flows + up to 2000 mice (random keys may collide; allow 1%).
  EXPECT_GE(truth.flow_count(), 2000u);
  EXPECT_LE(truth.flow_count(), 2055u);
}

TEST(Generator, TierSizesRespected) {
  const auto trace = generate(tiny_config());
  const analysis::GroundTruth truth{trace};
  std::size_t big = 0;
  for (const auto& [key, t] : truth.flows()) {
    if (t.packets >= 1000) ++big;
    EXPECT_LE(t.packets, 2000u + 5u);  // collisions may merge tiny flows
  }
  EXPECT_EQ(big, 5u);
}

TEST(Generator, TimestampsWithinDuration) {
  const auto trace = generate(tiny_config());
  EXPECT_LT(trace.packets.back().timestamp_ns, 2'100'000'000ULL);
}

TEST(Generator, WireLengthsWithinModel) {
  const auto config = tiny_config();
  const auto trace = generate(config);
  for (const auto& rec : trace.packets) {
    EXPECT_GE(rec.wire_len, config.sizes.small_min);
    EXPECT_LE(rec.wire_len, config.sizes.large_max);
  }
}

TEST(Generator, TcpFractionApproximate) {
  auto config = tiny_config();
  config.tcp_fraction = 0.9;
  config.mice.n_flows = 20'000;
  const auto trace = generate(config);
  const analysis::GroundTruth truth{trace};
  std::size_t tcp = 0;
  for (const auto& [key, t] : truth.flows()) {
    if (key.proto == static_cast<std::uint8_t>(netio::IpProto::kTcp)) ++tcp;
  }
  const double fraction =
      static_cast<double>(tcp) / static_cast<double>(truth.flow_count());
  EXPECT_NEAR(fraction, 0.9, 0.02);
}

TEST(Generator, DiurnalModulationShapesRate) {
  auto config = tiny_config();
  config.duration_s = 20.0;
  config.diurnal_depth = 0.9;
  config.diurnal_period_s = 20.0;  // one full cycle
  config.mice = {50'000, 1.0, 10};
  const auto trace = generate(config);
  const auto timeline = pps_timeline(trace, 1.0);
  ASSERT_GE(timeline.size(), 18u);
  // First half of the sine (rate > mean) must carry visibly more packets
  // than the second half (rate < mean).
  double first = 0, second = 0;
  for (std::size_t i = 0; i < 10; ++i) first += timeline[i];
  for (std::size_t i = 10; i < std::min<std::size_t>(20, timeline.size()); ++i) {
    second += timeline[i];
  }
  EXPECT_GT(first, second * 1.5);
}

TEST(CaidaLike, ScaleControlsVolume) {
  const auto small = generate(caida_like_config(0.002));
  const auto tiny = generate(caida_like_config(0.001));
  EXPECT_GT(small.packets.size(), tiny.packets.size());
  EXPECT_GT(tiny.packets.size(), 1000u);
}

TEST(CaidaLike, ZipfShape) {
  const auto trace = generate(caida_like_config(0.01));
  const analysis::GroundTruth truth{trace};
  // Mice (<10 pkts) must dominate the flow count; elephants must exist.
  std::size_t mice = 0, elephants = 0;
  std::uint64_t biggest = 0;
  for (const auto& [key, t] : truth.flows()) {
    if (t.packets < 10) ++mice;
    if (t.packets > 1000) ++elephants;
    biggest = std::max(biggest, t.packets);
  }
  EXPECT_GT(static_cast<double>(mice) / truth.flow_count(), 0.7);
  EXPECT_GT(elephants, 0u);
  EXPECT_GT(biggest, 1000u);
}

TEST(Campus, TcpHeavyMix) {
  const auto trace = generate(campus_config(0.01, 20.0));
  std::uint64_t tcp = 0;
  for (const auto& rec : trace.packets) {
    if (rec.key.proto == static_cast<std::uint8_t>(netio::IpProto::kTcp)) ++tcp;
  }
  EXPECT_GT(static_cast<double>(tcp) / trace.packets.size(), 0.85);
}

TEST(InjectAttack, AddsConstantRateFlow) {
  auto trace = generate(tiny_config());
  const auto before = trace.packets.size();
  AttackSpec spec;
  spec.rate_pps = 5000;
  spec.start_s = 0.5;
  spec.duration_s = 1.0;
  const auto key = inject_attack(trace, spec);
  EXPECT_EQ(trace.packets.size(), before + 5000);
  const analysis::GroundTruth truth{trace};
  const auto* t = truth.find(key);
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->packets, 5000u);
  // Still sorted after injection.
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    ASSERT_LE(trace.packets[i - 1].timestamp_ns, trace.packets[i].timestamp_ns);
  }
}

TEST(InjectScan, CreatesDistinctDestinationMiceFlows) {
  auto trace = generate(tiny_config());
  ScanSpec spec;
  spec.n_destinations = 1000;
  spec.packets_per_dst = 2;
  spec.start_s = 0.2;
  spec.duration_s = 0.5;
  const auto src = inject_scan(trace, spec);
  const analysis::GroundTruth truth{trace};
  std::size_t scan_flows = 0;
  std::set<std::uint32_t> dsts;
  for (const auto& [key, t] : truth.flows()) {
    if (key.src_ip != src) continue;
    ++scan_flows;
    dsts.insert(key.dst_ip);
    EXPECT_EQ(t.packets, 2u);
  }
  EXPECT_EQ(scan_flows, 1000u);
  EXPECT_EQ(dsts.size(), 1000u) << "every contact hits a distinct dst";
  for (std::size_t i = 1; i < trace.packets.size(); ++i) {
    ASSERT_LE(trace.packets[i - 1].timestamp_ns, trace.packets[i].timestamp_ns);
  }
}

TEST(InjectScan, ExplicitSourceRespected) {
  auto trace = generate(tiny_config());
  ScanSpec spec;
  spec.src_ip = 0xC0A80099;
  spec.n_destinations = 10;
  EXPECT_EQ(inject_scan(trace, spec), 0xC0A80099u);
}

TEST(Merge, InterleavesByTimestamp) {
  auto config_a = tiny_config();
  auto config_b = tiny_config();
  config_b.seed = 456;
  const auto a = generate(config_a);
  const auto b = generate(config_b);
  const auto merged = merge(a, b);
  EXPECT_EQ(merged.packets.size(), a.packets.size() + b.packets.size());
  for (std::size_t i = 1; i < merged.packets.size(); ++i) {
    ASSERT_LE(merged.packets[i - 1].timestamp_ns,
              merged.packets[i].timestamp_ns);
  }
}

TEST(PpsTimeline, CountsPerInterval) {
  Trace trace;
  trace.name = "manual";
  for (int i = 0; i < 10; ++i) {
    netio::PacketRecord rec;
    rec.timestamp_ns = static_cast<std::uint64_t>(i) * 100'000'000ULL;  // 0.1s
    rec.wire_len = 100;
    trace.packets.push_back(rec);
  }
  const auto timeline = pps_timeline(trace, 0.5);
  ASSERT_EQ(timeline.size(), 2u);
  EXPECT_DOUBLE_EQ(timeline[0], 10.0);  // 5 packets / 0.5s
  EXPECT_DOUBLE_EQ(timeline[1], 10.0);
}

TEST(TraceStats, DurationAndRates) {
  const auto trace = generate(tiny_config());
  EXPECT_GT(trace.duration_s(), 1.0);
  EXPECT_LT(trace.duration_s(), 2.1);
  EXPECT_GT(trace.average_pps(), 0.0);
  EXPECT_GT(trace.total_bytes(), trace.packets.size() * 64);
}

}  // namespace
}  // namespace instameasure::trace
