#include "memmodel/memory_model.h"

#include <gtest/gtest.h>

namespace instameasure::memmodel {
namespace {

TEST(MemoryTiming, DefaultRatiosMatchPaperAssumptions) {
  const MemoryTiming timing;
  // The paper assumes SRAM is 10-20x faster than DRAM.
  EXPECT_GE(timing.sram_speedup(), 10.0);
  EXPECT_LE(timing.sram_speedup(), 20.0);
  EXPECT_LT(timing.access_ns(MemoryKind::kTcam),
            timing.access_ns(MemoryKind::kSram));
  EXPECT_LT(timing.access_ns(MemoryKind::kSram),
            timing.access_ns(MemoryKind::kDram));
}

TEST(WsafBudget, MaxIpsScalesInverselyWithLatency) {
  WsafBudget budget;
  budget.timing = MemoryTiming{2.0, 4.0, 60.0};
  budget.accesses_per_insertion = 1.0;
  EXPECT_DOUBLE_EQ(budget.max_ips(MemoryKind::kDram), 1e9 / 60.0);
  EXPECT_DOUBLE_EQ(budget.max_ips(MemoryKind::kSram), 1e9 / 4.0);
}

TEST(WsafBudget, RegulationMarginAtPaperRates) {
  // At the CAIDA trace's ~1 Mpps, an in-DRAM WSAF (60 ns, 2 accesses per
  // insertion) sustains ~8.3 Mips: regulation up to ~833% — trivially OK.
  // At 100 Gbps line rate (~150 Mpps of 64-byte frames), the same table
  // allows only ~5.5% — i.e. RCC's 12-19% fails, FlowRegulator's ~1% fits.
  WsafBudget budget;
  const double line_rate_pps = 150e6;
  const double dram_margin =
      budget.max_regulation_rate(MemoryKind::kDram, line_rate_pps);
  EXPECT_GT(dram_margin, 0.02);
  EXPECT_LT(dram_margin, 0.10);
  EXPECT_FALSE(budget.feasible(MemoryKind::kDram, line_rate_pps, 0.12))
      << "RCC-style regulation must not fit DRAM at line rate";
  EXPECT_TRUE(budget.feasible(MemoryKind::kDram, line_rate_pps, 0.0102))
      << "FlowRegulator's 1.02% must fit DRAM at line rate";
}

TEST(WsafBudget, SramAlwaysBeatsDramMargin) {
  WsafBudget budget;
  for (const double pps : {1e6, 10e6, 150e6}) {
    EXPECT_GT(budget.max_regulation_rate(MemoryKind::kSram, pps),
              budget.max_regulation_rate(MemoryKind::kDram, pps));
  }
}

TEST(WsafBudget, ZeroPpsIsDegenerate) {
  WsafBudget budget;
  EXPECT_DOUBLE_EQ(budget.max_regulation_rate(MemoryKind::kDram, 0.0), 0.0);
}

TEST(MemoryKind, Names) {
  EXPECT_STREQ(to_string(MemoryKind::kTcam), "TCAM");
  EXPECT_STREQ(to_string(MemoryKind::kSram), "SRAM");
  EXPECT_STREQ(to_string(MemoryKind::kDram), "DRAM");
}

}  // namespace
}  // namespace instameasure::memmodel
