#include "analysis/ground_truth.h"

#include <gtest/gtest.h>

namespace instameasure::analysis {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, n ^ 0xffff, 1000, 80, 17};
}

trace::Trace manual_trace() {
  trace::Trace trace;
  trace.name = "manual";
  // Flow 1: 3 packets of 100B at t=0,10,20us; flow 2: 1 packet of 700B.
  trace.packets = {
      {0, key_n(1), 100},
      {5'000, key_n(2), 700},
      {10'000, key_n(1), 100},
      {20'000, key_n(1), 100},
  };
  return trace;
}

TEST(GroundTruth, CountsPacketsAndBytes) {
  const GroundTruth truth{manual_trace()};
  EXPECT_EQ(truth.flow_count(), 2u);
  const auto* f1 = truth.find(key_n(1));
  ASSERT_NE(f1, nullptr);
  EXPECT_EQ(f1->packets, 3u);
  EXPECT_EQ(f1->bytes, 300u);
  EXPECT_EQ(f1->first_ns, 0u);
  EXPECT_EQ(f1->last_ns, 20'000u);
  const auto* f2 = truth.find(key_n(2));
  ASSERT_NE(f2, nullptr);
  EXPECT_EQ(f2->packets, 1u);
  EXPECT_EQ(f2->bytes, 700u);
}

TEST(GroundTruth, FindMissingReturnsNull) {
  const GroundTruth truth{manual_trace()};
  EXPECT_EQ(truth.find(key_n(99)), nullptr);
}

TEST(GroundTruth, IncrementalAddMatchesBulk) {
  const auto trace = manual_trace();
  GroundTruth incremental;
  for (const auto& rec : trace.packets) incremental.add(rec);
  const GroundTruth bulk{trace};
  EXPECT_EQ(incremental.flow_count(), bulk.flow_count());
  EXPECT_EQ(incremental.find(key_n(1))->packets,
            bulk.find(key_n(1))->packets);
}

TEST(GroundTruth, TopKKeysByPackets) {
  const GroundTruth truth{manual_trace()};
  const auto top = truth.top_k_keys(1, /*by_bytes=*/false);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], key_n(1));
}

TEST(GroundTruth, TopKKeysByBytes) {
  const GroundTruth truth{manual_trace()};
  const auto top = truth.top_k_keys(1, /*by_bytes=*/true);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], key_n(2)) << "700B flow out-ranks 300B flow by bytes";
}

TEST(GroundTruth, TopKLargerThanPopulation) {
  const GroundTruth truth{manual_trace()};
  EXPECT_EQ(truth.top_k_keys(10, false).size(), 2u);
}

TEST(GroundTruth, CrossingTimePackets) {
  const auto trace = manual_trace();
  const auto t = GroundTruth::crossing_time_ns(trace, key_n(1), 2, false);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 10'000u) << "second packet crosses a threshold of 2";
}

TEST(GroundTruth, CrossingTimeBytes) {
  const auto trace = manual_trace();
  const auto t = GroundTruth::crossing_time_ns(trace, key_n(2), 700, true);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(*t, 5'000u);
}

TEST(GroundTruth, CrossingNeverHappens) {
  const auto trace = manual_trace();
  EXPECT_FALSE(
      GroundTruth::crossing_time_ns(trace, key_n(1), 100, false).has_value());
  EXPECT_FALSE(
      GroundTruth::crossing_time_ns(trace, key_n(42), 1, false).has_value());
}

}  // namespace
}  // namespace instameasure::analysis
