// Incremental online resize: the differential and robustness contract.
//
//  * Growth equivalence (the tentpole proof): a table grown online in the
//    middle of live Zipf ingest must be logically indistinguishable from a
//    fresh table built at the final capacity — same stats, occupancy,
//    logical entries, top-K and per-flow answers — in the zero-eviction
//    regime, for both layouts and several trace seeds. Migration is a
//    move, never an arrival: it may not count inserts or updates.
//  * Mid-migration consistency: at every step of the split-cursor walk the
//    table serves one consistent epoch — every flow findable, exactly
//    once, occupancy equal to the number of live flows.
//  * Bounded pause: no single accumulate() ever pays more than
//    kResizeMigrateSlotsPerOp old slots of migration work.
//  * Fault injection: an (injected) allocation failure rolls back with the
//    table still serving at old capacity; a migrate stall is counted and
//    cannot wedge finish_resize().
//  * Snapshots: a mid-resize save round-trips by completing the migration
//    at load; torn or nonsensical resize metadata is rejected.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>
#include <unistd.h>
#include <unordered_set>
#include <vector>

#include "core/topk.h"
#include "core/wsaf_table.h"
#include "resilience/faultpoint.h"
#include "trace/generator.h"

namespace instameasure::core {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, n + 7, static_cast<std::uint16_t>(n), 80, 6};
}

trace::Trace zipf_trace(std::uint64_t seed) {
  trace::TraceConfig config;
  config.name = "resize-diff-" + std::to_string(seed);
  config.duration_s = 1.0;
  config.tiers = {{3, 15'000, 30'000}, {25, 1'000, 4'000}};
  config.mice = {8'000, 1.1, 40};
  config.seed = seed;
  return trace::generate(config);
}

using LogicalEntry =
    std::tuple<netio::FlowKey, double, double, std::uint64_t, std::uint64_t>;

[[nodiscard]] std::vector<LogicalEntry> logical_entries(const WsafTable& table,
                                                        std::uint64_t now_ns) {
  std::vector<LogicalEntry> out;
  for (const auto* e : table.live_entries(now_ns)) {
    out.emplace_back(e->key, e->packets, e->bytes, e->first_seen_ns,
                     e->last_update_ns);
  }
  std::sort(out.begin(), out.end());
  return out;
}

WsafConfig table_config(WsafLayout layout, unsigned log2) {
  WsafConfig config;
  config.log2_entries = log2;
  config.probe_limit = 32;
  config.layout = layout;
  return config;
}

// --- Growth equivalence ----------------------------------------------------

// Feed a Zipf trace; a third of the way in, begin an online grow by one
// doubling and keep feeding (migration amortizes into the remaining
// accumulates). The result must match a fresh table born at the final
// capacity fed the identical stream. 2 layouts x 3 seeds.
TEST(WsafResize, OnlineGrowthMatchesFreshTableAtFinalCapacity) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    const auto trace = zipf_trace(seed);
    for (const auto layout : {WsafLayout::kScalarProbe, WsafLayout::kBucketed}) {
      SCOPED_TRACE(std::string{to_string(layout)} +
                   " seed=" + std::to_string(seed));
      // ~8k flows into 2^15 -> 2^16 slots with a 32-slot window: load stays
      // <= 0.25, so nothing evicts and exact equality is the contract.
      WsafTable grown{table_config(layout, 15)};
      WsafTable fresh{table_config(layout, 16)};
      const auto hseed = grown.config().seed;
      const std::size_t resize_at = trace.packets.size() / 3;
      std::size_t i = 0;
      for (const auto& rec : trace.packets) {
        if (i++ == resize_at) {
          ASSERT_TRUE(grown.begin_resize(16));
          ASSERT_TRUE(grown.resizing());
          EXPECT_EQ(grown.resize_source_log2(), 15u);
        }
        const auto h = rec.key.hash(hseed);
        const double bytes = static_cast<double>(rec.wire_len);
        grown.accumulate(rec.key, h, 1.0, bytes, rec.timestamp_ns);
        fresh.accumulate(rec.key, h, 1.0, bytes, rec.timestamp_ns);
      }
      grown.finish_resize();
      ASSERT_FALSE(grown.resizing());
      EXPECT_EQ(grown.slot_count(), fresh.slot_count());

      // Zero-eviction regime, asserted so a sizing change cannot silently
      // weaken the differential.
      ASSERT_EQ(grown.stats().evictions, 0u);
      ASSERT_EQ(grown.stats().rejected, 0u);
      ASSERT_EQ(fresh.stats().evictions, 0u);
      ASSERT_EQ(fresh.stats().rejected, 0u);

      // Migration is a move, not an arrival: insert/update counts match a
      // table that never resized. (probes differ by construction.)
      EXPECT_EQ(grown.stats().accumulates, fresh.stats().accumulates);
      EXPECT_EQ(grown.stats().inserts, fresh.stats().inserts);
      EXPECT_EQ(grown.stats().updates, fresh.stats().updates);
      EXPECT_EQ(grown.occupancy(), fresh.occupancy());

      const auto now = grown.latest_ns();
      ASSERT_EQ(now, fresh.latest_ns());
      EXPECT_EQ(logical_entries(grown, now), logical_entries(fresh, now));

      // Top-K and per-flow decode over the grown table answer identically.
      const auto tg = top_k(grown, 10, TopKMetric::kPackets);
      const auto tf = top_k(fresh, 10, TopKMetric::kPackets);
      ASSERT_EQ(tg.size(), tf.size());
      for (std::size_t r = 0; r < tg.size(); ++r) {
        EXPECT_EQ(tg[r].key, tf[r].key) << "rank " << r;
        EXPECT_DOUBLE_EQ(tg[r].packets, tf[r].packets) << "rank " << r;
      }
      std::unordered_set<std::uint64_t> seen;
      std::size_t checked = 0;
      for (const auto& rec : trace.packets) {
        if (checked >= 300) break;
        if (!seen.insert(rec.key.hash()).second) continue;
        ++checked;
        const auto h = rec.key.hash(hseed);
        const auto eg = grown.lookup(rec.key, h, now);
        const auto ef = fresh.lookup(rec.key, h, now);
        ASSERT_EQ(eg.has_value(), ef.has_value()) << rec.key.to_string();
        if (eg) {
          EXPECT_DOUBLE_EQ(eg->packets, ef->packets) << rec.key.to_string();
          EXPECT_DOUBLE_EQ(eg->bytes, ef->bytes) << rec.key.to_string();
        }
      }

      const auto& rs = grown.resize_stats();
      EXPECT_EQ(rs.started, 1u);
      EXPECT_EQ(rs.completed, 1u);
      EXPECT_EQ(rs.aborted, 0u);
      EXPECT_GT(rs.entries_migrated, 0u);
      // The bounded-pause contract, on real migration traffic.
      EXPECT_LE(rs.max_op_slots, WsafTable::kResizeMigrateSlotsPerOp);
    }
  }
}

// --- Mid-migration consistency --------------------------------------------

// While the split cursor walks, the table must serve one consistent epoch:
// every live flow findable, live_entries() covering each flow exactly once
// and agreeing with occupancy at every step.
TEST(WsafResize, MidMigrationServesOneConsistentEpoch) {
  for (const auto layout : {WsafLayout::kScalarProbe, WsafLayout::kBucketed}) {
    SCOPED_TRACE(to_string(layout));
    WsafTable table{table_config(layout, 12)};
    const auto seed = table.config().seed;
    constexpr std::uint32_t kFlows = 1'000;
    for (std::uint32_t n = 0; n < kFlows; ++n) {
      const auto key = key_n(n);
      table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + n);
    }
    ASSERT_EQ(table.occupancy(), kFlows);
    ASSERT_TRUE(table.begin_resize(13));

    // 2^12 old slots at 64/op -> 64 accumulates to drain; probe the epoch
    // after each step until the migration completes.
    std::uint32_t tick = 0;
    while (table.resizing()) {
      const auto key = key_n(tick % kFlows);
      table.accumulate(key, key.hash(seed), 1.0, 64.0, 5'000 + tick);
      ++tick;
      ASSERT_LT(tick, 200u) << "migration failed to complete";

      EXPECT_EQ(table.live_entries().size(), table.occupancy());
      std::unordered_set<std::uint64_t> keys;
      for (const auto* e : table.live_entries()) {
        EXPECT_TRUE(keys.insert(e->key.hash()).second)
            << "flow appears in both resize regions";
      }
      for (const std::uint32_t n : {0u, 1u, 250u, 500u, 999u}) {
        const auto key2 = key_n(n);
        EXPECT_TRUE(table.lookup(key2, key2.hash(seed)).has_value())
            << "flow " << n << " lost at tick " << tick;
      }
    }
    EXPECT_EQ(table.occupancy(), kFlows);
    EXPECT_EQ(table.resize_stats().completed, 1u);
    EXPECT_LE(table.resize_stats().max_op_slots,
              WsafTable::kResizeMigrateSlotsPerOp);
  }
}

// --- Fault injection -------------------------------------------------------

TEST(WsafResize, InjectedAllocationFailureRollsBackAndKeepsServing) {
  WsafTable table{table_config(WsafLayout::kScalarProbe, 10)};
  const auto seed = table.config().seed;
  for (std::uint32_t n = 0; n < 500; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + n);
  }
  const auto slots_before = table.slot_count();

  {
    resilience::ScopedFaults faults{{"wsaf.resize.alloc_fail", {}}};
    EXPECT_FALSE(table.begin_resize(11));
  }
  EXPECT_FALSE(table.resizing());
  EXPECT_EQ(table.slot_count(), slots_before);
  EXPECT_EQ(table.resize_stats().aborted, 1u);
  EXPECT_EQ(table.resize_stats().started, 0u);

  // The table keeps serving at its old capacity...
  for (std::uint32_t n = 0; n < 500; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 1'000 + n);
    ASSERT_TRUE(table.lookup(key, key.hash(seed)).has_value()) << n;
  }
  EXPECT_EQ(table.occupancy(), 500u);

  // ...and a later, un-faulted attempt succeeds.
  ASSERT_TRUE(table.begin_resize(11));
  table.finish_resize();
  EXPECT_EQ(table.slot_count(), std::size_t{1} << 11);
  EXPECT_EQ(table.occupancy(), 500u);
}

TEST(WsafResize, MigrateStallIsCountedAndCannotWedgeCompletion) {
  WsafTable table{table_config(WsafLayout::kScalarProbe, 10)};
  const auto seed = table.config().seed;
  for (std::uint32_t n = 0; n < 300; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + n);
  }
  {
    // Probability-1 stall: every amortized tick stalls instead of
    // migrating, so the cursor cannot advance on the accumulate path.
    resilience::ScopedFaults faults{{"wsaf.resize.migrate_stall", {}}};
    ASSERT_TRUE(table.begin_resize(11));
    for (std::uint32_t t = 0; t < 50; ++t) {
      const auto key = key_n(t);
      table.accumulate(key, key.hash(seed), 1.0, 64.0, 2'000 + t);
    }
    EXPECT_GT(table.resize_stats().migrate_stalls, 0u);
    // finish_resize() drains through the fault-free core: completion must
    // not depend on the fault ever clearing.
    table.finish_resize();
  }
  EXPECT_FALSE(table.resizing());
  EXPECT_EQ(table.occupancy(), 300u);
  EXPECT_EQ(table.resize_stats().completed, 1u);
  for (std::uint32_t n = 0; n < 300; ++n) {
    const auto key = key_n(n);
    EXPECT_TRUE(table.lookup(key, key.hash(seed)).has_value()) << n;
  }
}

// --- Pressure-driven auto-grow ---------------------------------------------

TEST(WsafResize, SustainedSaturationTriggersAutoGrowUpToTheCap) {
  auto config = table_config(WsafLayout::kScalarProbe, 6);
  config.grow_after_saturated_windows = 2;
  config.max_log2_entries = 7;
  WsafTable table{config};
  const auto seed = config.seed;

  // >90% occupancy of the 64-slot table, then enough accumulates to roll
  // several pressure windows at saturation.
  for (std::uint32_t n = 0; n < 60; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + n);
  }
  ASSERT_EQ(table.occupancy(), 60u);
  for (std::uint32_t t = 0; t < 4 * WsafTable::kPressureWindow; ++t) {
    const auto key = key_n(t % 60);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 1'000 + t);
  }
  table.finish_resize();
  EXPECT_EQ(table.slot_count(), std::size_t{1} << 7)
      << "saturated pressure must have grown the table once";
  EXPECT_GE(table.resize_stats().started, 1u);

  // Still >70% of the doubled table but the cap is reached: more saturated
  // windows must NOT grow past max_log2_entries.
  for (std::uint32_t n = 60; n < 120; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 10'000 + n);
  }
  for (std::uint32_t t = 0; t < 4 * WsafTable::kPressureWindow; ++t) {
    const auto key = key_n(t % 120);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 20'000 + t);
  }
  table.finish_resize();
  EXPECT_EQ(table.slot_count(), std::size_t{1} << 7);
}

// --- Constructor validation (messages carry the offending values) ----------

TEST(WsafResize, ConfigValidationNamesTheOffendingValues) {
  {
    auto config = table_config(WsafLayout::kScalarProbe, 10);
    config.max_log2_entries = 8;  // below log2_entries
    try {
      WsafTable table{config};
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("max_log2_entries (8)"), std::string::npos) << msg;
      EXPECT_NE(msg.find("log2_entries (10)"), std::string::npos) << msg;
    }
  }
  {
    auto config = table_config(WsafLayout::kScalarProbe, 41);  // > kMax
    try {
      WsafTable table{config};
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("41"), std::string::npos)
          << e.what();
    }
  }
}

// --- Snapshots of an in-flight resize --------------------------------------

class WsafResizeSnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("im_wsaf_resize_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin"))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(WsafResizeSnapshotTest, MidResizeSaveCompletesMigrationAtLoad) {
  for (const auto layout : {WsafLayout::kScalarProbe, WsafLayout::kBucketed}) {
    SCOPED_TRACE(to_string(layout));
    WsafTable table{table_config(layout, 12)};
    const auto seed = table.config().seed;
    for (std::uint32_t n = 0; n < 800; ++n) {
      const auto key = key_n(n);
      table.accumulate(key, key.hash(seed),
                       static_cast<double>(n % 9) + 1.0, 64.0, 100 + n);
    }
    ASSERT_TRUE(table.begin_resize(13));
    // A handful of accumulates: some slots migrated, most still old.
    for (std::uint32_t t = 0; t < 5; ++t) {
      const auto key = key_n(t);
      table.accumulate(key, key.hash(seed), 1.0, 64.0, 5'000 + t);
    }
    ASSERT_TRUE(table.resizing()) << "snapshot must capture an IN-FLIGHT resize";
    table.save(path_);

    const auto restored = WsafTable::load(path_);
    EXPECT_FALSE(restored.resizing())
        << "load completes the migration, never resumes it";
    EXPECT_EQ(restored.config().log2_entries, 13u);
    EXPECT_EQ(restored.occupancy(), table.occupancy());

    // Logical equality against the donor once IT finishes migrating.
    WsafTable drained = std::move(table);
    drained.finish_resize();
    const auto now = drained.latest_ns();
    EXPECT_EQ(restored.latest_ns(), now);
    EXPECT_EQ(logical_entries(restored, now), logical_entries(drained, now));
  }
}

TEST_F(WsafResizeSnapshotTest, CorruptResizeMetadataIsRejected) {
  WsafTable table{table_config(WsafLayout::kScalarProbe, 12)};
  const auto seed = table.config().seed;
  for (std::uint32_t n = 0; n < 400; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + n);
  }
  ASSERT_TRUE(table.begin_resize(13));
  table.save(path_);

  // header.reserved (old region log2) at offset 20 claims the old region
  // was NOT smaller than the new one: impossible for a grow, rejected.
  {
    std::fstream f{path_, std::ios::binary | std::ios::in | std::ios::out};
    f.seekp(20);
    const std::uint32_t bogus = 13;
    f.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_THROW((void)WsafTable::load(path_), std::runtime_error);
}

}  // namespace
}  // namespace instameasure::core
