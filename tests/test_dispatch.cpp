// Dispatch-policy behaviour of the multi-core runtime: flow affinity and
// load balance of the paper's popcount selector vs hash dispatch.
#include <gtest/gtest.h>

#include <vector>

#include "runtime/multicore.h"
#include "trace/generator.h"
#include "util/rng.h"

namespace instameasure::runtime {
namespace {

MultiCoreConfig config_with(DispatchPolicy policy, unsigned workers) {
  MultiCoreConfig config;
  config.workers = workers;
  config.dispatch = policy;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 12;
  return config;
}

netio::FlowKey random_key(util::Xoshiro256ss& rng) {
  return netio::FlowKey{static_cast<std::uint32_t>(rng()),
                        static_cast<std::uint32_t>(rng()),
                        static_cast<std::uint16_t>(rng()),
                        static_cast<std::uint16_t>(rng()), 6};
}

class DispatchPolicyTest : public ::testing::TestWithParam<DispatchPolicy> {};

TEST_P(DispatchPolicyTest, FlowAffinityIsStable) {
  MultiCoreEngine engine{config_with(GetParam(), 5)};
  util::Xoshiro256ss rng{3};
  for (int i = 0; i < 500; ++i) {
    const auto key = random_key(rng);
    const auto w = engine.worker_of(key);
    EXPECT_LT(w, 5u);
    EXPECT_EQ(engine.worker_of(key), w) << "same key, same worker";
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, DispatchPolicyTest,
                         ::testing::Values(DispatchPolicy::kPopcount,
                                           DispatchPolicy::kFlowHash));

TEST(Dispatch, HashPolicyBalancesBetterThanPopcount) {
  // popcount(random u32) ~ Binomial(32, 1/2): mass concentrates on 12-20,
  // so popcount mod N is visibly skewed; a full-key hash is near-uniform.
  // This is the trade-off the ablation bench documents.
  constexpr unsigned kWorkers = 4;
  MultiCoreEngine pop{config_with(DispatchPolicy::kPopcount, kWorkers)};
  MultiCoreEngine hash{config_with(DispatchPolicy::kFlowHash, kWorkers)};

  std::vector<std::uint64_t> pop_load(kWorkers, 0), hash_load(kWorkers, 0);
  util::Xoshiro256ss rng{7};
  constexpr int kFlows = 100'000;
  for (int i = 0; i < kFlows; ++i) {
    const auto key = random_key(rng);
    ++pop_load[pop.worker_of(key)];
    ++hash_load[hash.worker_of(key)];
  }

  auto imbalance = [](const std::vector<std::uint64_t>& load) {
    const auto max = *std::max_element(load.begin(), load.end());
    const double mean =
        static_cast<double>(kFlows) / static_cast<double>(load.size());
    return static_cast<double>(max) / mean;
  };
  EXPECT_LT(imbalance(hash_load), 1.02) << "hash dispatch near-uniform";
  EXPECT_GT(imbalance(pop_load), imbalance(hash_load))
      << "popcount dispatch strictly worse balanced";
}

TEST(Dispatch, BothPoliciesProcessAllPackets) {
  trace::TraceConfig tc;
  tc.duration_s = 0.5;
  tc.tiers = {{3, 5'000, 10'000}};
  tc.mice = {5'000, 1.0, 20};
  tc.seed = 5;
  const auto trace = trace::generate(tc);

  for (const auto policy :
       {DispatchPolicy::kPopcount, DispatchPolicy::kFlowHash}) {
    MultiCoreEngine engine{config_with(policy, 3)};
    const auto stats = engine.run(trace);
    std::uint64_t sum = 0;
    for (const auto n : stats.per_worker_packets) sum += n;
    EXPECT_EQ(sum, trace.packets.size());
  }
}

TEST(Dispatch, QueriesConsistentUnderHashPolicy) {
  trace::TraceConfig tc;
  tc.duration_s = 0.5;
  tc.tiers = {{3, 20'000, 30'000}};
  tc.seed = 6;
  const auto trace = trace::generate(tc);

  MultiCoreEngine engine{config_with(DispatchPolicy::kFlowHash, 3)};
  (void)engine.run(trace);
  // The top elephant must be visible through the merged view, and querying
  // its key must route to the shard holding it.
  const auto top = engine.top_k_packets(1);
  ASSERT_FALSE(top.empty());
  EXPECT_GT(top[0].packets, 15'000.0);
  const auto est = engine.query(top[0].key);
  EXPECT_TRUE(est.in_wsaf);
  EXPECT_NEAR(est.packets, top[0].packets, top[0].packets * 0.05);
}

}  // namespace
}  // namespace instameasure::runtime
