// Robustness / fuzz-style property tests: parsers and decoders must never
// crash, hang, or mis-behave on adversarial bytes — a measurement box sits
// on a mirror port and sees whatever the network throws at it.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <unistd.h>

#include "netio/codec.h"
#include "netio/ipfix.h"
#include "netio/pcap.h"
#include "netio/pcapng.h"
#include "util/rng.h"

namespace instameasure {
namespace {

std::vector<std::byte> random_bytes(util::Xoshiro256ss& rng, std::size_t n) {
  std::vector<std::byte> out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng() & 0xff);
  return out;
}

TEST(Robustness, FrameDecoderNeverCrashesOnRandomBytes) {
  util::Xoshiro256ss rng{101};
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.next_below(128));
    const auto bytes = random_bytes(rng, len);
    const auto parsed = netio::decode_frame(bytes);
    if (parsed) {
      // Anything accepted must at least be internally consistent.
      EXPECT_EQ(parsed->frame_len, bytes.size());
    }
  }
}

TEST(Robustness, FrameDecoderNeverCrashesOnMutatedValidFrames) {
  util::Xoshiro256ss rng{102};
  const netio::FlowKey key{1, 2, 3, 4,
                           static_cast<std::uint8_t>(netio::IpProto::kTcp)};
  const auto base = netio::encode_frame(key, 64);
  for (int trial = 0; trial < 20'000; ++trial) {
    auto frame = base;
    // Flip 1-4 random bytes.
    const auto flips = 1 + rng.next_below(4);
    for (std::uint64_t f = 0; f < flips; ++f) {
      frame[rng.next_below(frame.size())] =
          static_cast<std::byte>(rng() & 0xff);
    }
    (void)netio::decode_frame(frame);  // must not crash; result irrelevant
  }
}

TEST(Robustness, IpfixDecoderNeverCrashesOnRandomBytes) {
  util::Xoshiro256ss rng{103};
  for (int trial = 0; trial < 20'000; ++trial) {
    const auto len = static_cast<std::size_t>(rng.next_below(256));
    const auto bytes = random_bytes(rng, len);
    (void)netio::ipfix_decode(bytes);
  }
}

TEST(Robustness, IpfixDecoderSurvivesMutatedValidMessages) {
  util::Xoshiro256ss rng{104};
  std::vector<netio::IpfixFlowRecord> records(10);
  for (std::uint32_t n = 0; n < 10; ++n) {
    records[n].key = netio::FlowKey{n, n, 1, 2, 6};
    records[n].packets = n;
  }
  const auto base = netio::ipfix_encode(records, 1, 1);
  for (int trial = 0; trial < 20'000; ++trial) {
    auto msg = base;
    msg[rng.next_below(msg.size())] = static_cast<std::byte>(rng() & 0xff);
    const auto decoded = netio::ipfix_decode(msg);
    if (decoded) {
      EXPECT_LE(decoded->size(), 64u) << "length fields must stay bounded";
    }
  }
}

class FuzzFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("im_fuzz_" + std::to_string(::getpid()) + "_" +
              ::testing::UnitTest::GetInstance()->current_test_info()->name()))
                .string();
  }
  void TearDown() override { std::filesystem::remove(path_); }
  std::string path_;
};

TEST_F(FuzzFileTest, PcapReaderThrowsButNeverCrashesOnGarbageFiles) {
  util::Xoshiro256ss rng{105};
  for (int trial = 0; trial < 200; ++trial) {
    {
      std::ofstream out{path_, std::ios::binary | std::ios::trunc};
      const auto bytes = random_bytes(rng, 24 + rng.next_below(256));
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    try {
      netio::PcapReader reader{path_};
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
      // expected for malformed files
    }
  }
}

TEST_F(FuzzFileTest, PcapReaderSurvivesTruncationAtEveryOffset) {
  // Write one valid file, then re-read it truncated at many lengths: every
  // outcome must be either clean EOF or a runtime_error.
  netio::PacketVector packets;
  for (int i = 0; i < 3; ++i) {
    netio::PacketRecord rec;
    rec.timestamp_ns = static_cast<std::uint64_t>(i);
    rec.key = netio::FlowKey{1, 2, 3, 4,
                             static_cast<std::uint8_t>(netio::IpProto::kUdp)};
    rec.wire_len = 80;
    packets.push_back(rec);
  }
  netio::save_pcap(path_, packets);
  const auto full = std::filesystem::file_size(path_);
  const auto original = [&] {
    std::ifstream in{path_, std::ios::binary};
    std::vector<char> data(full);
    in.read(data.data(), static_cast<std::streamsize>(full));
    return data;
  }();

  for (std::size_t cut = 0; cut <= full; cut += 7) {
    {
      std::ofstream out{path_, std::ios::binary | std::ios::trunc};
      out.write(original.data(), static_cast<std::streamsize>(cut));
    }
    try {
      netio::PcapReader reader{path_};
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST_F(FuzzFileTest, PcapngReaderRejectsGarbageGracefully) {
  util::Xoshiro256ss rng{106};
  for (int trial = 0; trial < 200; ++trial) {
    {
      std::ofstream out{path_, std::ios::binary | std::ios::trunc};
      // Half the trials start with the right magic to reach deeper code.
      if (trial % 2 == 0) {
        const std::uint32_t shb = netio::kPcapngShb;
        out.write(reinterpret_cast<const char*>(&shb), 4);
      }
      const auto bytes = random_bytes(rng, 16 + rng.next_below(300));
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    }
    try {
      netio::PcapngReader reader{path_};
      while (reader.next()) {
      }
    } catch (const std::runtime_error&) {
    }
  }
}

}  // namespace
}  // namespace instameasure
