#include <gtest/gtest.h>

#include <cmath>

#include "analysis/ground_truth.h"
#include "apps/superspreader.h"
#include "apps/traffic_stats.h"
#include "core/instameasure.h"
#include "trace/generator.h"

namespace instameasure::apps {
namespace {

// ---------- SuperSpreaderDetector ----------

trace::Trace background_trace() {
  trace::TraceConfig config;
  config.duration_s = 2.0;
  config.tiers = {{5, 2'000, 8'000}};
  config.mice = {10'000, 1.0, 20};
  config.seed = 61;
  return trace::generate(config);
}

TEST(SuperSpreader, DetectsPlantedScanner) {
  auto trace = background_trace();
  trace::ScanSpec scan;
  scan.n_destinations = 4'000;
  scan.packets_per_dst = 1;
  scan.start_s = 0.5;
  scan.seed = 9;
  const auto scanner = inject_scan(trace, scan);

  SuperSpreaderDetector detector{SuperSpreaderConfig{}};
  for (const auto& rec : trace.packets) detector.offer(rec);

  const auto top = detector.top(3);
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top.front().src_ip, scanner);
  EXPECT_NEAR(top.front().distinct_dsts / 4000.0, 1.0, 0.15);
}

TEST(SuperSpreader, RanksTwoScannersByFanout) {
  auto trace = background_trace();
  trace::ScanSpec big;
  big.n_destinations = 5'000;
  big.seed = 11;
  trace::ScanSpec small;
  small.n_destinations = 800;
  small.seed = 12;
  const auto big_src = inject_scan(trace, big);
  const auto small_src = inject_scan(trace, small);

  SuperSpreaderDetector detector{SuperSpreaderConfig{}};
  for (const auto& rec : trace.packets) detector.offer(rec);

  const auto top = detector.top(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].src_ip, big_src);
  EXPECT_EQ(top[1].src_ip, small_src);
  EXPECT_GT(top[0].distinct_dsts, top[1].distinct_dsts * 3);
}

TEST(SuperSpreader, RepeatContactsDoNotCount) {
  SuperSpreaderDetector detector{SuperSpreaderConfig{}};
  netio::PacketRecord rec;
  rec.key = netio::FlowKey{0xAABB, 0xCCDD, 1, 2, 6};
  rec.wire_len = 60;
  for (int i = 0; i < 10'000; ++i) detector.offer(rec);
  // One (src, dst) pair, hammered: distinct destinations ~ 1, not 10000.
  EXPECT_LT(detector.distinct_destinations(0xAABB), 5.0);
}

TEST(SuperSpreader, NormalSourcesNotFlagged) {
  const auto trace = background_trace();
  SuperSpreaderDetector detector{SuperSpreaderConfig{}};
  for (const auto& rec : trace.packets) detector.offer(rec);
  // Background flows have random sources; no source should show thousands
  // of distinct destinations.
  for (const auto& spreader : detector.top(5)) {
    EXPECT_LT(spreader.distinct_dsts, 100.0);
  }
}

// ---------- flow statistics ----------

TEST(TrafficStats, EntropyClosedFormCases) {
  EXPECT_DOUBLE_EQ(flow_size_entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(flow_size_entropy({5.0}), 0.0) << "single flow: H = 0";
  EXPECT_NEAR(flow_size_entropy({1, 1, 1, 1}), 2.0, 1e-12)
      << "four equal flows: H = 2 bits";
  EXPECT_NEAR(flow_size_entropy({2, 2}), 1.0, 1e-12);
  // Skew lowers entropy below uniform.
  EXPECT_LT(flow_size_entropy({1000, 1, 1, 1}), 2.0);
}

TEST(TrafficStats, WsafEntropyTracksTruthOverMeasurableRegion) {
  const auto trace = background_trace();
  const analysis::GroundTruth truth{trace};

  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 64 * 1024;
  config.wsaf.log2_entries = 16;
  core::InstaMeasure engine{config};
  for (const auto& rec : trace.packets) engine.process(rec);

  // Truth entropy over the same region the WSAF can see (flows that emit
  // at least one saturation event ~ >= 150 packets to be safe).
  std::vector<double> truth_sizes;
  for (const auto& [key, t] : truth.flows()) {
    if (t.packets >= 150) truth_sizes.push_back(static_cast<double>(t.packets));
  }
  const double truth_h = flow_size_entropy(truth_sizes);
  const double est_h = wsaf_entropy(engine.wsaf());
  EXPECT_NEAR(est_h, truth_h, 0.8) << "entropy in bits";
}

TEST(TrafficStats, FsdBucketsMatchTruthForElephants) {
  const auto trace = background_trace();
  const analysis::GroundTruth truth{trace};

  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 64 * 1024;
  config.wsaf.log2_entries = 16;
  core::InstaMeasure engine{config};
  for (const auto& rec : trace.packets) engine.process(rec);

  const std::vector<std::uint64_t> edges{1'000, 4'000};
  const auto fsd = flow_size_distribution(engine.wsaf(), edges);
  ASSERT_EQ(fsd.size(), 2u);

  std::uint64_t truth_1k = 0, truth_4k = 0;
  for (const auto& [key, t] : truth.flows()) {
    if (t.packets >= 4'000) {
      ++truth_4k;
    } else if (t.packets >= 1'000) {
      ++truth_1k;
    }
  }
  EXPECT_NEAR(static_cast<double>(fsd[1].flows),
              static_cast<double>(truth_4k), 1.0);
  EXPECT_NEAR(static_cast<double>(fsd[0].flows),
              static_cast<double>(truth_1k),
              std::max(1.0, 0.3 * static_cast<double>(truth_1k)));
}

TEST(TrafficStats, FsdEmptyWsaf) {
  core::WsafConfig config;
  config.log2_entries = 4;
  const core::WsafTable table{config};
  const auto fsd = flow_size_distribution(table, {10, 100});
  EXPECT_EQ(fsd[0].flows, 0u);
  EXPECT_EQ(fsd[1].flows, 0u);
}

}  // namespace
}  // namespace instameasure::apps
