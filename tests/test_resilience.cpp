// Overload-resilience suite: the deterministic fault-injection harness,
// the SimulatedChannel pathology knobs, reliable delegation, the
// MultiCoreEngine overload policies (accounting invariant, shed accuracy,
// paced-mode degradation), WSAF pressure signals, and the watchdog.
//
// The chaos tests arm named fault points with seeded schedules, so every
// failure pattern replays identically; the invariant they all defend is
//   offered == processed + dropped + shed
// for every policy under every schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/ground_truth.h"
#include "core/wsaf_table.h"
#include "core/wsaf_view.h"
#include "delegation/reliable.h"
#include "resilience/faultpoint.h"
#include "runtime/multicore.h"
#include "telemetry/trace.h"
#include "trace/generator.h"
#include "wsaf_layout_env.h"

namespace instameasure {
namespace {

using resilience::FaultRegistry;
using resilience::FaultSpec;
using resilience::ScopedFaults;

/// Fault-schedule seeds the chaos matrices iterate. IM_CHAOS_SEED=<n>
/// narrows the matrix to that single seed — the reproduction knob: a chaos
/// failure prints its effective seed (via SCOPED_TRACE), and re-running
/// with IM_CHAOS_SEED set replays exactly that schedule.
std::vector<std::uint64_t> chaos_seeds() {
  if (const char* env = std::getenv("IM_CHAOS_SEED")) {
    return {std::strtoull(env, nullptr, 10)};
  }
  return {1, 2, 3};
}

// ---------- FaultPoint / FaultRegistry ----------

TEST(FaultPoint, UnarmedNeverFires) {
  auto& fp = resilience::faultpoint("test.unarmed");
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(fp.fire());
}

TEST(FaultPoint, DeterministicAcrossReArms) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  auto& fp = resilience::faultpoint("test.determinism");
  const FaultSpec spec{.probability = 0.3, .seed = 0xabcdef};
  const auto pattern = [&] {
    FaultRegistry::instance().arm("test.determinism", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 2000; ++i) fired.push_back(fp.fire());
    return fired;
  };
  const auto a = pattern();
  const auto b = pattern();
  EXPECT_EQ(a, b) << "same seed must replay the same schedule";
  const auto fires = static_cast<double>(std::count(a.begin(), a.end(), true));
  EXPECT_NEAR(fires / 2000.0, 0.3, 0.05);
  FaultRegistry::instance().disarm("test.determinism");
}

TEST(FaultPoint, SkipFirstAndMaxFiresBudget) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  auto& fp = resilience::faultpoint("test.budget");
  FaultRegistry::instance().arm(
      "test.budget",
      {.probability = 1.0, .max_fires = 3, .skip_first = 5, .seed = 1});
  std::vector<bool> fired;
  for (int i = 0; i < 20; ++i) fired.push_back(fp.fire());
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(fired[static_cast<size_t>(i)]);
  EXPECT_EQ(std::count(fired.begin(), fired.end(), true), 3);
  EXPECT_EQ(fp.fires(), 3u);
  EXPECT_EQ(fp.evaluations(), 20u);
  FaultRegistry::instance().disarm("test.budget");
}

TEST(FaultPoint, ArmResetsTalliesAndDisarmStops) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  auto& fp = resilience::faultpoint("test.rearm");
  FaultRegistry::instance().arm("test.rearm", {.probability = 1.0});
  EXPECT_TRUE(fp.fire());
  EXPECT_EQ(fp.fires(), 1u);
  FaultRegistry::instance().arm("test.rearm", {.probability = 1.0});
  EXPECT_EQ(fp.fires(), 0u) << "re-arming resets per-schedule tallies";
  FaultRegistry::instance().disarm("test.rearm");
  EXPECT_FALSE(fp.fire());
}

TEST(FaultPoint, ScopedFaultsDisarmOnExit) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  auto& fp = resilience::faultpoint("test.scoped");
  {
    ScopedFaults faults{{"test.scoped", {.probability = 1.0, .param = 7.0}}};
    EXPECT_TRUE(fp.fire());
    EXPECT_DOUBLE_EQ(fp.param(), 7.0);
  }
  EXPECT_FALSE(fp.armed());
  EXPECT_FALSE(fp.fire());
}

// ---------- SimulatedChannel pathology knobs ----------

TEST(Channel, DuplicateKnobDeliversTwice) {
  delegation::ChannelConfig config;
  config.delay_ms = 10.0;
  config.duplicate_rate = 1.0;
  config.duplicate_lag_ms = 5.0;
  delegation::SimulatedChannel<int> channel{config};
  (void)channel.send(0, 42);
  EXPECT_EQ(channel.duplicated(), 1u);
  EXPECT_EQ(channel.in_flight(), 2u);
  const auto out = channel.deliver_until(100'000'000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 10'000'000u);
  EXPECT_EQ(out[1].first, 15'000'000u);
  EXPECT_EQ(out[0].second, 42);
  EXPECT_EQ(out[1].second, 42);
}

TEST(Channel, ReorderKnobAddsExtraDelay) {
  delegation::ChannelConfig config;
  config.delay_ms = 10.0;
  config.reorder_rate = 1.0;  // every message gets the extra delay
  config.reorder_ms = 30.0;
  delegation::SimulatedChannel<int> channel{config};
  (void)channel.send(0, 1);          // delivers at 0 + 10 + 30 = 40ms
  (void)channel.send(1'000'000, 2);  // delivers at 1 + 10 + 30 = 41ms
  EXPECT_EQ(channel.reordered(), 2u);
  const auto out = channel.deliver_until(1'000'000'000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].first, 40'000'000u);
  EXPECT_EQ(out[1].first, 41'000'000u);
}

TEST(Channel, ReorderFaultInvertsDeliveryOrder) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  delegation::ChannelConfig config;
  config.delay_ms = 10.0;
  delegation::SimulatedChannel<int> channel{config};
  {
    // Only the first send is delayed (+30ms): the second message, sent
    // later, overtakes it — a true order inversion.
    ScopedFaults faults{{"delegation.channel.reorder",
                         {.probability = 1.0, .max_fires = 1, .param = 30.0}}};
    (void)channel.send(0, 1);          // delivers at 40ms
    (void)channel.send(5'000'000, 2);  // delivers at 15ms
  }
  const auto out = channel.deliver_until(1'000'000'000);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].second, 2) << "the later send must arrive first";
  EXPECT_EQ(out[1].second, 1);
  EXPECT_EQ(channel.reordered(), 1u);
}

TEST(Channel, HeapDeliveryOrderStableForTies) {
  delegation::ChannelConfig config;
  config.delay_ms = 5.0;
  delegation::SimulatedChannel<int> channel{config};
  for (int i = 0; i < 32; ++i) (void)channel.send(0, i);  // same deliver time
  const auto out = channel.deliver_until(1'000'000'000);
  ASSERT_EQ(out.size(), 32u);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(out[static_cast<size_t>(i)].second, i)
        << "ties must deliver in send order";
  }
}

TEST(Channel, FaultPointsDropAndDuplicate) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  delegation::ChannelConfig config;
  config.delay_ms = 1.0;
  delegation::SimulatedChannel<int> channel{config};
  {
    ScopedFaults faults{
        {"delegation.channel.drop", {.probability = 1.0, .max_fires = 1}}};
    EXPECT_FALSE(channel.send(0, 1).has_value());
    EXPECT_TRUE(channel.send(0, 2).has_value());
  }
  EXPECT_EQ(channel.lost(), 1u);
  {
    ScopedFaults faults{{"delegation.channel.duplicate",
                         {.probability = 1.0, .max_fires = 1}}};
    (void)channel.send(0, 3);
  }
  EXPECT_EQ(channel.duplicated(), 1u);
  const auto out = channel.deliver_until(1'000'000'000);
  EXPECT_EQ(out.size(), 3u);  // payloads 2, 3, 3
}

// ---------- ReliableLink ----------

TEST(ReliableLink, AckClearsPendingWithoutRetransmit) {
  delegation::ReliableConfig rc;
  delegation::ChannelConfig data;  // 20ms, lossless
  delegation::ReliableLink<int> link{rc, data};
  link.send(0, 7);
  EXPECT_EQ(link.unacked(), 1u);
  const auto out = link.receive(25'000'000);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 7);
  link.tick(50'000'000);  // ack (20ms reverse) absorbed
  EXPECT_EQ(link.unacked(), 0u);
  EXPECT_TRUE(link.idle());
  EXPECT_EQ(link.stats().retransmits, 0u);
  EXPECT_EQ(link.gaps(), 0u);
}

TEST(ReliableLink, RetransmitRecoversInjectedLoss) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  delegation::ReliableConfig rc;
  rc.rto_ms = 50.0;
  delegation::ChannelConfig data;
  delegation::ReliableLink<int> link{rc, data};
  {
    ScopedFaults faults{
        {"delegation.channel.drop", {.probability = 1.0, .max_fires = 1}}};
    link.send(0, 9);  // first transmission eaten by the fault
  }
  EXPECT_TRUE(link.receive(40'000'000).empty());
  link.tick(50'000'000);  // RTO expires -> retransmit
  const auto out = link.receive(80'000'000);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].second, 9);
  link.tick(200'000'000);
  EXPECT_TRUE(link.idle());
  EXPECT_EQ(link.stats().retransmits, 1u);
  EXPECT_EQ(link.gaps_vs_sent(), 0u);
}

TEST(ReliableLink, ZeroRetransmitBudgetIsLossyBaseline) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  delegation::ReliableConfig rc;
  rc.max_retransmits = 0;
  delegation::ChannelConfig data;
  delegation::ReliableLink<int> link{rc, data};
  {
    ScopedFaults faults{
        {"delegation.channel.drop", {.probability = 1.0, .max_fires = 1}}};
    link.send(0, 1);  // lost forever
  }
  link.send(0, 2);
  (void)link.receive(25'000'000);  // payload 2 arrives; its ack is in flight
  link.tick(100'000'000);  // ack absorbed; payload 1 expires -> abandoned
  EXPECT_EQ(link.stats().abandoned, 1u);
  EXPECT_EQ(link.stats().retransmits, 0u);
  link.tick(200'000'000);
  EXPECT_EQ(link.delivered(), 1u);
  EXPECT_EQ(link.gaps_vs_sent(), 1u) << "the lost payload is a permanent gap";
  EXPECT_TRUE(link.idle());
}

TEST(ReliableLink, DuplicateDeliveriesDeduplicated) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  delegation::ReliableConfig rc;
  delegation::ChannelConfig data;
  delegation::ReliableLink<int> link{rc, data};
  {
    ScopedFaults faults{{"delegation.channel.duplicate",
                         {.probability = 1.0, .max_fires = 1}}};
    link.send(0, 4);
  }
  const auto out = link.receive(1'000'000'000);
  ASSERT_EQ(out.size(), 1u) << "the duplicate copy must be dropped";
  EXPECT_EQ(link.stats().duplicates_dropped, 1u);
  link.tick(2'000'000'000);
  EXPECT_TRUE(link.idle());
}

// ---------- Reliable delegation pipeline ----------

trace::Trace pipeline_trace() {
  trace::TraceConfig config;
  config.duration_s = 1.0;
  config.tiers = {{4, 10'000, 20'000}};
  config.mice = {10'000, 1.1, 30};
  config.seed = 404;
  return trace::generate(config);
}

TEST(ReliablePipeline, RecoversAllEpochsAtTwentyPercentLoss) {
  const auto trace = pipeline_trace();
  delegation::PipelineConfig config;
  config.epoch_ms = 10.0;
  config.sketch.width = 1 << 12;
  config.sketch.depth = 4;
  config.channel.delay_ms = 5.0;
  config.channel.loss_rate = 0.2;
  config.channel.seed = 0x10ad;
  config.reliable.rto_ms = 20.0;
  config.reliable.ack_channel.delay_ms = 5.0;
  config.reliable.ack_channel.loss_rate = 0.2;  // acks get lost too
  config.reliable.ack_channel.seed = 0xacc;
  const auto run =
      delegation::run_reliable_pipeline(trace.packets, config, {});
  EXPECT_GT(run.epochs, 50u);
  EXPECT_EQ(run.epochs_recovered, run.epochs);
  EXPECT_EQ(run.gaps, 0u) << "every lost epoch must be retransmitted home";
  EXPECT_EQ(run.abandoned, 0u);
  EXPECT_GT(run.channel_losses, 0u) << "the channel really was lossy";
  EXPECT_GT(run.retransmits, 0u);
  EXPECT_GE(run.transmissions, run.epochs + run.retransmits);
}

TEST(ReliablePipeline, LossyBaselineCountsGapsWithoutRepair) {
  const auto trace = pipeline_trace();
  delegation::PipelineConfig config;
  config.epoch_ms = 10.0;
  config.sketch.width = 1 << 12;
  config.sketch.depth = 4;
  config.channel.delay_ms = 5.0;
  config.channel.loss_rate = 0.2;
  config.channel.seed = 0x10ad;
  config.reliable.max_retransmits = 0;  // sequenced-but-lossy
  config.reliable.ack_channel.delay_ms = 5.0;
  const auto run =
      delegation::run_reliable_pipeline(trace.packets, config, {});
  EXPECT_GT(run.gaps, 0u) << "20% loss with no repair must leave gaps";
  EXPECT_LT(run.epochs_recovered, run.epochs);
  EXPECT_EQ(run.retransmits, 0u);
  EXPECT_EQ(run.gaps, run.epochs - run.epochs_recovered);
}

// ---------- MultiCoreConfig validation ----------

runtime::MultiCoreConfig small_config(unsigned workers) {
  runtime::MultiCoreConfig config;
  config.workers = workers;
  config.queue_capacity = 1 << 10;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 14;
  config.engine.wsaf.layout = testenv::wsaf_layout_from_env();
  return config;
}

TEST(MultiCoreValidation, ZeroWorkersRejected) {
  auto config = small_config(0);
  EXPECT_THROW(runtime::MultiCoreEngine{config}, std::invalid_argument);
}

TEST(MultiCoreValidation, NonPowerOfTwoQueueRejected) {
  for (const std::size_t bad : {std::size_t{0}, std::size_t{1},
                                std::size_t{3}, std::size_t{1000}}) {
    auto config = small_config(2);
    config.queue_capacity = bad;
    EXPECT_THROW(runtime::MultiCoreEngine{config}, std::invalid_argument)
        << "queue_capacity=" << bad;
  }
  auto ok = small_config(2);
  ok.queue_capacity = 1 << 5;
  EXPECT_NO_THROW(runtime::MultiCoreEngine{ok});
}

// Validation failures must be actionable from the message alone: each one
// names the offending value. Pinned as text so a refactor cannot silently
// regress the diagnostics.
TEST(MultiCoreValidation, ErrorMessagesNameTheOffendingValue) {
  {
    auto config = small_config(0);
    try {
      runtime::MultiCoreEngine engine{config};
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("got 0"), std::string::npos)
          << e.what();
    }
  }
  {
    auto config = small_config(2);
    config.queue_capacity = 1000;
    try {
      runtime::MultiCoreEngine engine{config};
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string{e.what()}.find("got 1000"), std::string::npos)
          << e.what();
    }
  }
  {
    auto config = small_config(2);
    config.shared_table = true;
    config.engine.enable_audit = true;
    try {
      runtime::MultiCoreEngine engine{config};
      FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string msg = e.what();
      EXPECT_NE(msg.find("shared_table"), std::string::npos) << msg;
      EXPECT_NE(msg.find("enable_audit"), std::string::npos) << msg;
    }
  }
}

TEST(MultiCoreValidation, UndersizedTraceRecorderRejected) {
  if constexpr (!telemetry::kEnabled) GTEST_SKIP();
  telemetry::TraceConfig trace_config;
  trace_config.tracks = 2;  // needs workers + 1 = 5
  telemetry::TraceRecorder recorder{trace_config};
  auto config = small_config(4);
  config.trace = &recorder;
  EXPECT_THROW(runtime::MultiCoreEngine{config}, std::invalid_argument);
  telemetry::TraceConfig enough;
  enough.tracks = 5;
  telemetry::TraceRecorder big{enough};
  config.trace = &big;
  EXPECT_NO_THROW(runtime::MultiCoreEngine{config});
}

// ---------- WSAF pressure signal ----------

TEST(WsafPressure, FreshTableIsNominal) {
  core::WsafConfig config;
  config.log2_entries = 10;
  core::WsafTable table{config};
  const auto p = table.pressure();
  EXPECT_EQ(p.level, core::WsafPressureLevel::kNominal);
  EXPECT_DOUBLE_EQ(p.occupancy_ratio, 0.0);
  EXPECT_DOUBLE_EQ(p.eviction_pressure, 0.0);
}

TEST(WsafPressure, OverrunTinyTableSaturates) {
  core::WsafConfig config;
  config.log2_entries = 6;  // 64 slots
  config.probe_limit = 4;
  core::WsafTable table{config};
  // 4096 distinct flows through 64 slots: occupancy pins near 1.0 and the
  // recent-window eviction fraction approaches 1.
  for (std::uint32_t i = 0; i < 4096; ++i) {
    const netio::FlowKey key{i + 1, ~i, 80, 443, 6};
    (void)table.accumulate(key, key.hash(1), 1.0, 100.0, i * 1000);
  }
  const auto p = table.pressure();
  EXPECT_EQ(p.level, core::WsafPressureLevel::kSaturated);
  EXPECT_GT(p.occupancy_ratio, 0.9);
  EXPECT_GT(p.eviction_pressure, 0.5);
  table.reset();
  EXPECT_EQ(table.pressure().level, core::WsafPressureLevel::kNominal);
}

// ---------- Overload policies: accounting + chaos matrix ----------

trace::Trace chaos_trace() {
  trace::TraceConfig config;
  config.duration_s = 1.0;
  config.tiers = {{4, 15'000, 30'000}, {20, 1'000, 3'000}};
  config.mice = {15'000, 1.1, 30};
  config.seed = 99;
  return trace::generate(config);
}

TEST(OverloadChaos, AccountingInvariantHoldsForAllPoliciesAndSeeds) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  const auto trace = chaos_trace();
  const std::uint64_t offered = trace.packets.size();
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("IM_CHAOS_SEED=" + std::to_string(seed));
    for (const auto policy :
         {runtime::OverloadPolicy::kBlock, runtime::OverloadPolicy::kDropTail,
          runtime::OverloadPolicy::kShed}) {
      ScopedFaults faults{
          {"runtime.queue_full", {.probability = 0.2, .seed = seed}},
          {"runtime.worker_stall",
           {.probability = 0.02, .param = 20'000.0, .seed = seed + 7}}};
      auto config = small_config(2);
      config.queue_capacity = 1 << 8;
      config.overload.policy = policy;
      config.overload.full_queue_retries = 0;  // make drops/sheds reachable
      config.overload.escalate_after_stalls = 8;
      config.overload.max_shed_level = 4;
      runtime::MultiCoreEngine engine{config};
      const auto stats = engine.run(trace);
      EXPECT_EQ(stats.packets, offered);
      EXPECT_EQ(stats.processed + stats.dropped + stats.shed, offered)
          << "policy=" << to_string(policy) << " seed=" << seed;
      std::uint64_t worker_sum = 0;
      for (const auto p : stats.per_worker_packets) worker_sum += p;
      EXPECT_EQ(worker_sum, stats.processed);
      switch (policy) {
        case runtime::OverloadPolicy::kBlock:
          EXPECT_EQ(stats.dropped, 0u);
          EXPECT_EQ(stats.shed, 0u);
          EXPECT_EQ(stats.processed, offered);
          break;
        case runtime::OverloadPolicy::kDropTail:
          EXPECT_GT(stats.dropped, 0u) << "20% queue-full faults, no retries";
          EXPECT_EQ(stats.shed, 0u);
          break;
        case runtime::OverloadPolicy::kShed:
          EXPECT_GT(stats.shed, 0u);
          EXPECT_EQ(stats.dropped, 0u);
          EXPECT_GE(stats.shed_level_peak, 1u);
          break;
      }
    }
  }
}

TEST(OverloadChaos, ShedPolicyIdleMatchesBlockBitExactly) {
  // With no pressure the ladder never engages, every item has weight 1, and
  // the shed policy must leave shard state bit-identical to kBlock.
  const auto trace = chaos_trace();
  const auto snapshots = [&](runtime::OverloadPolicy policy) {
    auto config = small_config(2);
    // Deep queues so real contention never engages the ladder: weight-1 items
    // only, which is the precondition for bit-identical shard state.
    config.queue_capacity = 1 << 15;
    config.overload.policy = policy;
    runtime::MultiCoreEngine engine{config};
    const auto stats = engine.run(trace);
    EXPECT_EQ(stats.shed, 0u) << to_string(policy);
    EXPECT_EQ(stats.dropped, 0u) << to_string(policy);
    std::vector<std::string> shards;
    for (unsigned w = 0; w < 2; ++w) {
      const auto path = testing::TempDir() + "resil-idle-" +
                        std::string(to_string(policy)) + "-" +
                        std::to_string(w) + ".bin";
      engine.engine(w).wsaf().save(path);
      std::ifstream in{path, std::ios::binary};
      std::ostringstream buf;
      buf << in.rdbuf();
      shards.push_back(buf.str());
    }
    return shards;
  };
  const auto block = snapshots(runtime::OverloadPolicy::kBlock);
  const auto shed = snapshots(runtime::OverloadPolicy::kShed);
  ASSERT_EQ(block.size(), shed.size());
  for (std::size_t w = 0; w < block.size(); ++w) {
    EXPECT_EQ(block[w], shed[w]) << "shard " << w;
  }
}

TEST(OverloadChaos, ShedAtQuarterKeepsHeavyHittersWithinTenPercent) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  // Zipf trace; baseline = lossless kBlock. Chaos run: 25% of push attempts
  // hit an injected queue-full, the ladder engages, a large fraction of the
  // offered load is shed with weight compensation. The top-10 byte flows
  // must survive with estimates within 10% of the baseline's.
  trace::TraceConfig tc;
  tc.duration_s = 2.0;
  tc.tiers = {{10, 80'000, 160'000}};
  tc.mice = {25'000, 1.1, 30};
  tc.seed = 1234;
  const auto trace = trace::generate(tc);

  auto config = small_config(2);
  config.engine.wsaf.log2_entries = 16;
  runtime::MultiCoreEngine baseline{config};
  (void)baseline.run(trace);
  const auto top = baseline.top_k_bytes(10);
  ASSERT_EQ(top.size(), 10u);

  auto chaos_config = config;
  chaos_config.overload.policy = runtime::OverloadPolicy::kShed;
  chaos_config.overload.full_queue_retries = 8;
  chaos_config.overload.escalate_after_stalls = 32;
  chaos_config.overload.max_shed_level = 2;  // floor: 1/4 admission
  runtime::MultiCoreEngine chaos{chaos_config};
  runtime::RunStats stats;
  {
    ScopedFaults faults{
        {"runtime.queue_full", {.probability = 0.25, .seed = 0x7ea5}}};
    stats = chaos.run(trace);
  }
  EXPECT_GT(stats.shed, 0u) << "the ladder must have engaged";
  EXPECT_GE(stats.shed_level_peak, 1u);
  EXPECT_EQ(stats.processed + stats.dropped + stats.shed,
            trace.packets.size());

  // Every baseline top-10 flow must still be found among the chaos run's
  // top flows, with byte estimates within 10%.
  std::set<std::string> chaos_top;
  for (const auto& item : chaos.top_k_bytes(15)) {
    chaos_top.insert(item.key.to_string());
  }
  for (const auto& item : top) {
    EXPECT_TRUE(chaos_top.contains(item.key.to_string()))
        << item.key.to_string() << " lost under shedding";
    const auto est = chaos.query(item.key);
    EXPECT_NEAR(est.bytes / item.bytes, 1.0, 0.10) << item.key.to_string();
  }
}

TEST(OverloadPaced, ShedBoundsBacklogWhereBlockFallsBehind) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  // One worker slowed to well below the offered rate by an injected
  // per-burst stall. kBlock must absorb the excess as producer stalls and
  // a stretched wall clock; kShed must climb the ladder and keep up.
  trace::Trace slice;
  slice.name = "paced-overload";
  for (std::uint32_t i = 0; i < 40'000; ++i) {
    netio::PacketRecord rec;
    rec.timestamp_ns = i;
    rec.key = netio::FlowKey{i * 2654435761u, ~i, 80, 443, 6};
    rec.wire_len = 100;
    slice.packets.push_back(rec);
  }
  const double pace = 400'000;  // 100ms of offered traffic
  const auto run_policy = [&](runtime::OverloadPolicy policy) {
    ScopedFaults faults{{"runtime.worker_stall",
                         {.probability = 1.0, .param = 500'000.0}}};
    auto config = small_config(1);
    config.queue_capacity = 1 << 9;
    config.overload.policy = policy;
    config.overload.full_queue_retries = 4;
    config.overload.escalate_after_stalls = 16;
    runtime::MultiCoreEngine engine{config};
    return engine.run(slice, pace);
  };
  const auto block = run_policy(runtime::OverloadPolicy::kBlock);
  const auto shed = run_policy(runtime::OverloadPolicy::kShed);

  // Sanity on both: exact accounting.
  EXPECT_EQ(block.processed, slice.packets.size());
  EXPECT_EQ(shed.processed + shed.shed, slice.packets.size());
  // kBlock fell behind: the producer was stalled against the full ring.
  EXPECT_GT(block.producer_stalls, 0u);
  EXPECT_GE(block.max_queue_depth[0], std::size_t{1} << 8)
      << "the blocked ring should have filled at least halfway";
  // kShed engaged the ladder, shed load, and finished sooner with fewer
  // producer stalls — the graceful-degradation contract.
  EXPECT_GT(shed.shed, 0u);
  EXPECT_GE(shed.shed_level_peak, 1u);
  EXPECT_LT(shed.producer_stalls, block.producer_stalls);
  EXPECT_LT(shed.wall_seconds, block.wall_seconds);
}

// ---------- Resize + shared-table chaos ----------

// Online WSAF grows under kShed with a 20% injected queue-full rate and
// occasional migrate stalls: the accounting invariant must stay exact
// while every shard's table is migrating under live ingest.
// The resize-chaos runs need tables that actually saturate mid-run. Mice
// never saturate the regulator, so WSAF occupancy is bounded by the count
// of event-producing flows: add a 200-flow mid tier (every 200-600 packet
// flow saturates a 2-bit virtual vector repeatedly) and shrink the vectors
// so events are plentiful enough to roll pressure windows (1024
// accumulates each) many times per worker.
trace::Trace resize_chaos_trace() {
  trace::TraceConfig config;
  config.duration_s = 1.0;
  config.tiers = {{4, 15'000, 30'000}, {20, 1'000, 3'000}, {200, 200, 600}};
  config.mice = {15'000, 1.1, 30};
  config.seed = 99;
  return trace::generate(config);
}

void shrink_regulator(runtime::MultiCoreConfig& config) {
  config.engine.regulator.l1_memory_bytes = 2048;
  config.engine.regulator.vv_bits = 2;
}

TEST(ResizeChaos, AccountingExactWhileTablesGrowUnderShed) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  const auto trace = resize_chaos_trace();
  const std::uint64_t offered = trace.packets.size();
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("IM_CHAOS_SEED=" + std::to_string(seed));
    ScopedFaults faults{
        {"runtime.queue_full", {.probability = 0.2, .seed = seed}},
        {"wsaf.resize.migrate_stall",
         {.probability = 0.01, .seed = seed + 3}}};
    auto config = small_config(2);
    config.queue_capacity = 1 << 8;
    config.overload.policy = runtime::OverloadPolicy::kShed;
    config.overload.full_queue_retries = 0;  // make sheds reachable
    config.overload.escalate_after_stalls = 8;
    config.overload.max_shed_level = 4;
    // Deliberately undersized with auto-grow headroom: hundreds of
    // event-producing flows pour into 2^6 slots, forcing repeated online
    // grows in the middle of the overloaded run.
    shrink_regulator(config);
    config.engine.wsaf.log2_entries = 6;
    config.engine.wsaf.grow_after_saturated_windows = 2;
    config.engine.wsaf.max_log2_entries = 14;
    runtime::MultiCoreEngine engine{config};
    const auto stats = engine.run(trace);
    EXPECT_EQ(stats.packets, offered);
    EXPECT_EQ(stats.processed + stats.dropped + stats.shed, offered);
    std::uint64_t grows = 0;
    for (unsigned w = 0; w < engine.workers(); ++w) {
      grows += engine.engine(w).wsaf().resize_stats().started;
    }
    EXPECT_GE(grows, 1u) << "the chaos run must actually have resized";
  }
}

// Injected allocation failure on every grow attempt: auto-grow keeps
// retrying and aborting, the tables never change size, and the run still
// completes with exact accounting (rollback leaves the table serving).
TEST(ResizeChaos, AllocationFailureRollsBackAndTheRunCompletes) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  const auto trace = resize_chaos_trace();
  ScopedFaults faults{{"wsaf.resize.alloc_fail", {.probability = 1.0}}};
  auto config = small_config(2);
  shrink_regulator(config);
  config.engine.wsaf.log2_entries = 6;
  config.engine.wsaf.grow_after_saturated_windows = 2;
  config.engine.wsaf.max_log2_entries = 14;
  runtime::MultiCoreEngine engine{config};
  const auto stats = engine.run(trace);
  EXPECT_EQ(stats.processed, trace.packets.size());
  for (unsigned w = 0; w < engine.workers(); ++w) {
    const auto& wsaf = engine.engine(w).wsaf();
    EXPECT_EQ(wsaf.slot_count(), std::size_t{1} << 6)
        << "worker " << w << ": every grow attempt must have rolled back";
    EXPECT_GE(wsaf.resize_stats().aborted, 1u) << "worker " << w;
    EXPECT_EQ(wsaf.resize_stats().started, 0u) << "worker " << w;
  }
}

// Shared-table mode under the same 20% queue-full chaos: packets whose
// home queue stays full are stolen to other workers instead of shed, and
// the steal counters reconcile exactly with the accounting invariant.
TEST(SharedTableChaos, StealingPreservesExactAccounting) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  const auto trace = chaos_trace();
  const std::uint64_t offered = trace.packets.size();
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("IM_CHAOS_SEED=" + std::to_string(seed));
    ScopedFaults faults{
        {"runtime.queue_full", {.probability = 0.2, .seed = seed}}};
    auto config = small_config(4);
    config.queue_capacity = 1 << 8;
    config.shared_table = true;
    config.overload.policy = runtime::OverloadPolicy::kShed;
    config.overload.full_queue_retries = 2;
    config.overload.escalate_after_stalls = 8;
    config.overload.max_shed_level = 4;
    runtime::MultiCoreEngine engine{config};
    const auto stats = engine.run(trace);
    EXPECT_EQ(stats.packets, offered);
    EXPECT_EQ(stats.processed + stats.dropped + stats.shed, offered);
    EXPECT_GT(stats.steals, 0u)
        << "a 20% queue-full rate must have diverted some packets";
    std::uint64_t per_worker = 0;
    for (const auto s : stats.per_worker_steals) per_worker += s;
    EXPECT_EQ(per_worker, stats.steals);
  }
}

// Shared-table mode while the stripes grow online AND packets are being
// stolen: the hardest interleaving this PR ships. Accounting stays exact
// and the shared table ends with every processed flow visible once.
TEST(SharedTableChaos, ResizeUnderStealingStaysConsistent) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  const auto trace = resize_chaos_trace();
  const std::uint64_t offered = trace.packets.size();
  for (const std::uint64_t seed : chaos_seeds()) {
    SCOPED_TRACE("IM_CHAOS_SEED=" + std::to_string(seed));
    ScopedFaults faults{
        {"runtime.queue_full", {.probability = 0.2, .seed = seed}}};
    auto config = small_config(4);
    config.queue_capacity = 1 << 8;
    config.shared_table = true;
    config.shared_log2_stripes = 2;
    config.overload.policy = runtime::OverloadPolicy::kShed;
    config.overload.full_queue_retries = 2;
    config.overload.escalate_after_stalls = 8;
    config.overload.max_shed_level = 4;
    // 4 stripes of 2^4 slots: hundreds of event-producing flows saturate
    // every stripe, so the stripes must grow online while packets are
    // simultaneously being stolen across home queues.
    shrink_regulator(config);
    config.engine.wsaf.log2_entries = 6;
    config.engine.wsaf.grow_after_saturated_windows = 2;
    config.engine.wsaf.max_log2_entries = 16;
    runtime::MultiCoreEngine engine{config};
    const auto stats = engine.run(trace);
    EXPECT_EQ(stats.processed + stats.dropped + stats.shed, offered);
    ASSERT_NE(engine.shared_table(), nullptr);
    EXPECT_GE(engine.shared_table()->resize_stats().started, 1u)
        << "the shared stripes must actually have grown";
    // One consistent epoch at the end: every live flow exactly once.
    core::WsafView view;
    engine.shared_table()->fill_view(view,
                                     engine.shared_table()->latest_ns());
    std::set<std::string> keys;
    for (const auto& e : view.entries) {
      EXPECT_TRUE(keys.insert(e.key.to_string()).second)
          << e.key.to_string() << " appears twice";
    }
  }
}

// ---------- Watchdog ----------

TEST(Watchdog, ReportsWedgedWorker) {
  if (!resilience::kFaultPointsEnabled) GTEST_SKIP();
  // The first burst wedges the (only) worker for 100ms while the producer
  // keeps the queue non-empty; a 5ms-heartbeat watchdog must report the
  // stall well before it clears.
  trace::Trace slice;
  slice.name = "wedge";
  for (std::uint32_t i = 0; i < 200'000; ++i) {
    netio::PacketRecord rec;
    rec.timestamp_ns = i;
    rec.key = netio::FlowKey{i * 2654435761u, ~i, 80, 443, 6};
    rec.wire_len = 100;
    slice.packets.push_back(rec);
  }
  ScopedFaults faults{
      {"runtime.worker_stall",
       {.probability = 1.0, .max_fires = 1, .param = 100e6}}};
  auto config = small_config(1);
  config.queue_capacity = 1 << 12;
  config.overload.watchdog_interval_ms = 5.0;
  config.overload.watchdog_stall_intervals = 3;
  runtime::MultiCoreEngine engine{config};
  const auto stats = engine.run(slice);
  EXPECT_GE(stats.watchdog_stall_reports, 1u);
  EXPECT_EQ(stats.processed, slice.packets.size());
}

TEST(Watchdog, QuietWorkerNeverReported) {
  trace::Trace slice;
  slice.name = "quiet";
  for (std::uint32_t i = 0; i < 20'000; ++i) {
    netio::PacketRecord rec;
    rec.timestamp_ns = i;
    rec.key = netio::FlowKey{i * 2654435761u, ~i, 80, 443, 6};
    rec.wire_len = 100;
    slice.packets.push_back(rec);
  }
  auto config = small_config(2);
  config.overload.watchdog_interval_ms = 2.0;
  runtime::MultiCoreEngine engine{config};
  const auto stats = engine.run(slice);
  EXPECT_EQ(stats.watchdog_stall_reports, 0u);
}

}  // namespace
}  // namespace instameasure
