// SharedWsaf: the striped shared-table mode that underpins work-stealing.
//
// Single-threaded correctness (partitioning, views, aggregates, per-stripe
// auto-grow) plus multi-threaded hammer tests that exist primarily as TSan
// targets: concurrent accumulates from many workers — including while a
// stripe is mid-resize — must be data-race-free and lose no counts.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "core/wsaf_shared.h"
#include "core/wsaf_view.h"

namespace instameasure::core {
namespace {

netio::FlowKey key_n(std::uint32_t n) {
  return netio::FlowKey{n, n + 7, static_cast<std::uint16_t>(n), 80, 6};
}

SharedWsafConfig shared_config(unsigned log2_entries, unsigned log2_stripes,
                               WsafLayout layout = WsafLayout::kScalarProbe) {
  SharedWsafConfig config;
  config.table.log2_entries = log2_entries;
  config.table.probe_limit = 32;
  config.table.layout = layout;
  config.log2_stripes = log2_stripes;
  return config;
}

TEST(SharedWsaf, PartitionsFlowsAcrossStripesAndFindsThemAll) {
  SharedWsaf table{shared_config(12, 3)};
  const auto seed = WsafConfig{}.seed;
  constexpr std::uint32_t kFlows = 2'000;
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + n);
  }
  EXPECT_EQ(table.occupancy(), kFlows);
  EXPECT_EQ(table.stats().inserts, kFlows);
  EXPECT_EQ(table.slot_count(), std::size_t{1} << 12);
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    const auto e = table.lookup(key, key.hash(seed));
    ASSERT_TRUE(e.has_value()) << n;
    EXPECT_DOUBLE_EQ(e->packets, 1.0) << n;
  }
  // No stripe is empty at this flow count: the hash top bits spread.
  std::size_t populated = 0;
  for (std::size_t s = 0; s < table.stripe_count(); ++s) {
    if (table.stripe(s).occupancy() > 0) ++populated;
  }
  EXPECT_EQ(populated, table.stripe_count());
}

TEST(SharedWsaf, FillViewCoversEveryFlowExactlyOnce) {
  SharedWsaf table{shared_config(10, 2)};
  const auto seed = WsafConfig{}.seed;
  for (std::uint32_t n = 0; n < 500; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 2.0, 128.0, 100 + n);
  }
  WsafView view;
  table.fill_view(view, table.latest_ns());
  EXPECT_EQ(view.entries.size(), 500u);
  std::unordered_set<std::uint64_t> keys;
  for (const auto& e : view.entries) {
    EXPECT_TRUE(keys.insert(e.key.hash()).second) << e.key.to_string();
  }
}

TEST(SharedWsaf, HotStripeAutoGrowsIndependently) {
  // 8 stripes of 2^7 slots; headroom to 2^13 logical (2^10 per stripe).
  auto config = shared_config(10, 3);
  config.table.grow_after_saturated_windows = 2;
  config.table.max_log2_entries = 13;
  SharedWsaf table{config};
  const auto seed = WsafConfig{}.seed;

  // Hammer flows belonging to ONE stripe until its pressure windows roll
  // at saturation; the stripe grows on its own, siblings stay put.
  const auto target = table.stripe_of(key_n(0).hash(seed));
  std::vector<std::uint32_t> stripe_flows;
  for (std::uint32_t n = 0; stripe_flows.size() < 120 && n < 200'000; ++n) {
    if (table.stripe_of(key_n(n).hash(seed)) == target) {
      stripe_flows.push_back(n);
    }
  }
  ASSERT_EQ(stripe_flows.size(), 120u);
  std::uint64_t t = 0;
  for (int round = 0; round < 3; ++round) {
    for (unsigned rep = 0; rep < 40; ++rep) {
      for (const auto n : stripe_flows) {
        const auto key = key_n(n);
        table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + t++);
      }
    }
  }
  table.stripe(target).finish_resize();
  EXPECT_GT(table.stripe(target).slot_count(), std::size_t{1} << 7)
      << "saturated stripe must have auto-grown";
  EXPECT_GE(table.resize_stats().started, 1u);
  // One final touch pass (pre-growth saturation may have evicted someone),
  // then every flow must be present in the grown stripe.
  for (const auto n : stripe_flows) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + t++);
    EXPECT_TRUE(table.lookup(key, key.hash(seed)).has_value()) << n;
  }
}

TEST(SharedWsaf, ValidationNamesTheOffendingValues) {
  try {
    SharedWsaf bad{shared_config(4, 17)};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("log2_stripes (17)"),
              std::string::npos)
        << e.what();
  }
  try {
    SharedWsaf bad{shared_config(5, 3, WsafLayout::kBucketed)};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("log2_entries (5)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("log2_stripes (3)"), std::string::npos) << msg;
  }
  try {
    auto config = shared_config(10, 2);
    config.table.max_log2_entries = 9;
    SharedWsaf bad{config};
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("max_log2_entries (9)"), std::string::npos) << msg;
    EXPECT_NE(msg.find("log2_entries (10)"), std::string::npos) << msg;
  }
}

// --- Concurrency (TSan targets) --------------------------------------------

// Many writers, disjoint flow sets: no accumulate may be lost and every
// flow must land exactly once (the stripe locks serialize per stripe).
TEST(SharedWsafConcurrency, ParallelWritersLoseNothing) {
  SharedWsaf table{shared_config(14, 3)};
  const auto seed = WsafConfig{}.seed;
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kPerThread = 2'000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t i = 0; i < kPerThread; ++i) {
        const auto key = key_n(t * kPerThread + i);
        table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.stats().accumulates, kThreads * std::uint64_t{kPerThread});
  EXPECT_EQ(table.occupancy(), kThreads * std::size_t{kPerThread});
}

// Shared flows hammered from every thread at comfortable load: per-flow
// totals must sum to the global accumulate count — no lost updates under
// contention (asserted zero-eviction so the equality is exact).
TEST(SharedWsafConcurrency, ContendedFlowsCountExactly) {
  SharedWsaf table{shared_config(12, 2)};
  const auto seed = WsafConfig{}.seed;
  constexpr unsigned kThreads = 4;
  constexpr std::uint32_t kFlows = 180;
  constexpr std::uint32_t kReps = 1'500;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t r = 0; r < kReps; ++r) {
        const auto key = key_n((r + t) % kFlows);
        table.accumulate(key, key.hash(seed), 1.0, 64.0,
                         100 + r * kThreads + t);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(table.stats().accumulates, kThreads * std::uint64_t{kReps});
  ASSERT_EQ(table.stats().evictions, 0u);
  ASSERT_EQ(table.stats().rejected, 0u);
  double total = 0;
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    const auto e = table.lookup(key, key.hash(seed));
    ASSERT_TRUE(e.has_value()) << n;
    total += e->packets;
  }
  EXPECT_DOUBLE_EQ(total, static_cast<double>(kThreads) * kReps);
}

// Resize under concurrent ingest: tiny stripes with auto-grow headroom are
// hammered past saturation from several threads, so stripes run their
// incremental migration WHILE other threads accumulate into them. TSan
// asserts race-freedom; the accumulate tally is lock-protected and exact.
TEST(SharedWsafConcurrency, StripesResizeUnderConcurrentIngest) {
  auto config = shared_config(8, 2);
  config.table.grow_after_saturated_windows = 1;
  config.table.max_log2_entries = 12;
  SharedWsaf table{config};
  const auto seed = WsafConfig{}.seed;
  constexpr unsigned kThreads = 4;
  // ~70 flows per 64-slot starting stripe: each stripe is driven to full
  // occupancy (saturated) until it grows.
  constexpr std::uint32_t kFlows = 280;
  constexpr std::uint32_t kReps = 3'000;
  std::vector<std::thread> threads;
  for (unsigned t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint32_t r = 0; r < kReps; ++r) {
        const auto key = key_n((r + t) % kFlows);
        table.accumulate(key, key.hash(seed), 1.0, 64.0,
                         100 + r * kThreads + t);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (std::size_t s = 0; s < table.stripe_count(); ++s) {
    table.stripe(s).finish_resize();
  }
  EXPECT_EQ(table.stats().accumulates, kThreads * std::uint64_t{kReps});
  EXPECT_GE(table.resize_stats().started, 1u)
      << "saturated stripes must have begun growing";
  EXPECT_GT(table.slot_count(), std::size_t{1} << 8);
  // The grown table keeps serving: every flow is insertable and findable.
  for (std::uint32_t n = 0; n < kFlows; ++n) {
    const auto key = key_n(n);
    table.accumulate(key, key.hash(seed), 1.0, 64.0, 1'000'000 + n);
    EXPECT_TRUE(table.lookup(key, key.hash(seed)).has_value()) << n;
  }
}

// Concurrent readers (lookup + pressure + fill_view from a "manager") race
// writers; TSan asserts the locking is complete.
TEST(SharedWsafConcurrency, ReadersRaceWritersSafely) {
  SharedWsaf table{shared_config(12, 3)};
  const auto seed = WsafConfig{}.seed;
  std::atomic<bool> stop{false};
  std::thread writer{[&] {
    for (std::uint32_t i = 0; i < 30'000 && !stop.load(); ++i) {
      const auto key = key_n(i % 4'000);
      table.accumulate(key, key.hash(seed), 1.0, 64.0, 100 + i);
    }
    stop.store(true);
  }};
  std::thread reader{[&] {
    WsafView view;
    while (!stop.load()) {
      const auto key = key_n(17);
      (void)table.lookup(key, key.hash(seed));
      (void)table.pressure();
      table.fill_view(view, table.latest_ns());
    }
  }};
  writer.join();
  reader.join();
  EXPECT_EQ(table.stats().accumulates, 30'000u);
}

}  // namespace
}  // namespace instameasure::core
