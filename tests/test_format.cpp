#include "util/format.h"

#include <gtest/gtest.h>

#include "analysis/report.h"

namespace instameasure::util {
namespace {

TEST(FormatRate, Units) {
  EXPECT_EQ(format_rate(1'500'000), "1.50 Mpps");
  EXPECT_EQ(format_rate(12'300), "12.3 kpps");
  EXPECT_EQ(format_rate(42), "42 pps");
  EXPECT_EQ(format_rate(0), "0 pps");
}

TEST(FormatBytes, Units) {
  EXPECT_EQ(format_bytes(2'500'000'000ULL), "2.50 GB");
  EXPECT_EQ(format_bytes(33'000'000), "33.0 MB");
  EXPECT_EQ(format_bytes(131'072), "131.1 KB");
  EXPECT_EQ(format_bytes(12), "12 B");
}

TEST(FormatDuration, Units) {
  EXPECT_EQ(format_duration_ns(2.5e9), "2.50 s");
  EXPECT_EQ(format_duration_ns(3.456e6), "3.456 ms");
  EXPECT_EQ(format_duration_ns(120e3), "120.0 us");
  EXPECT_EQ(format_duration_ns(45), "45 ns");
}

TEST(FormatCount, ThousandsSeparators) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1'000), "1,000");
  EXPECT_EQ(format_count(12'345'678), "12,345,678");
  EXPECT_EQ(format_count(100'000), "100,000");
}

TEST(ReportTable, RendersAlignedColumns) {
  analysis::Table table{{"name", "value"}};
  table.add_row({"alpha", "1"});
  table.add_row({"beta-longer", "23456"});

  // Render into a memstream and verify structure.
  char* buffer = nullptr;
  std::size_t size = 0;
  std::FILE* stream = open_memstream(&buffer, &size);
  ASSERT_NE(stream, nullptr);
  table.print(stream);
  std::fclose(stream);
  const std::string out{buffer, size};
  free(buffer);

  EXPECT_NE(out.find("| name"), std::string::npos);
  EXPECT_NE(out.find("| alpha"), std::string::npos);
  EXPECT_NE(out.find("| beta-longer"), std::string::npos);
  EXPECT_NE(out.find("|---"), std::string::npos);
  // All lines equal width (aligned table).
  std::size_t first_nl = out.find('\n');
  ASSERT_NE(first_nl, std::string::npos);
  std::size_t pos = 0, line_len = first_nl;
  while (pos < out.size()) {
    const auto nl = out.find('\n', pos);
    if (nl == std::string::npos) break;
    EXPECT_EQ(nl - pos, line_len) << "ragged table row";
    pos = nl + 1;
  }
}

TEST(ReportCell, PrintfFormatting) {
  EXPECT_EQ(analysis::cell("%.2f%%", 12.3456), "12.35%");
  EXPECT_EQ(analysis::cell("%d/%d", 3, 7), "3/7");
}

}  // namespace
}  // namespace instameasure::util

// Umbrella-header smoke test: one TU including everything must compile and
// the headline types must be usable together.
#include "instameasure.h"

namespace instameasure {
namespace {

TEST(UmbrellaHeader, EverythingVisible) {
  core::EngineConfig config;
  config.wsaf.log2_entries = 6;
  const core::InstaMeasure engine{config};
  EXPECT_EQ(engine.packets_processed(), 0u);
  const sketch::BloomFilter bloom{16, 0.1};
  EXPECT_GT(bloom.bit_count(), 0u);
  const memmodel::WsafBudget budget;
  EXPECT_GT(budget.max_ips(memmodel::MemoryKind::kDram), 0.0);
}

}  // namespace
}  // namespace instameasure
