// Campus gateway monitor: the paper's 113-hour deployment (§IV.B, §V.D)
// in miniature — continuous measurement at a mirrored uplink with periodic
// top-K reports, WSAF garbage collection of idle flows, and overhead
// telemetry, all on one worker core.
//
// Usage: ./examples/campus_gateway [--minutes=4] [--workers=2] [--scale=0.05]
//                                  [--replay capture.imtrace]
//
// --replay monitors a recorded uplink trace (trace_io format) instead of
// the synthetic diurnal one; an unreadable or truncated file exits 1 with
// a one-line diagnostic.
#include <cstdio>
#include <exception>
#include <string>

#include "analysis/ground_truth.h"
#include "runtime/multicore.h"
#include "telemetry/export.h"
#include "telemetry/reporter.h"
#include "trace/generator.h"
#include "trace/trace_io.h"
#include "util/cli.h"
#include "util/format.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double minutes = args.get_double("minutes", 4);
  const auto workers = static_cast<unsigned>(args.get_int("workers", 2));
  const double scale = args.get_double("scale", 0.05);
  const std::string metrics_path =
      args.get("metrics", "campus_gateway_metrics.prom");

  std::printf("=== campus gateway monitor (%.0f compressed 'days') ===\n",
              4.0);

  trace::Trace trace;
  if (const std::string replay_path = args.get("replay", "");
      !replay_path.empty()) {
    try {
      trace = trace::load_trace(replay_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "campus_gateway: %s: %s\n", replay_path.c_str(),
                   e.what());
      return 1;
    }
    if (trace.packets.empty()) {
      std::fprintf(stderr, "campus_gateway: %s: trace holds no packets\n",
                   replay_path.c_str());
      return 1;
    }
  } else {
    trace = trace::generate(trace::campus_config(scale, minutes * 60.0, 11));
  }
  std::printf("uplink replay: %s packets / %s over %.0f min (diurnal)\n\n",
              util::format_count(trace.packets.size()).c_str(),
              util::format_bytes(trace.total_bytes()).c_str(), minutes);

  // Deployment config: paper's 128KB sketch + 2^20 WSAF, plus inline GC of
  // flows idle for more than one 'hour' of compressed trace time.
  runtime::MultiCoreConfig config;
  config.workers = workers;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 20;
  config.engine.wsaf.idle_timeout_ns =
      static_cast<std::uint64_t>(minutes * 60.0 / 8.0 * 1e9);
  runtime::MultiCoreEngine engine{config};

  // Scrape target: a reporter thread rewrites the Prometheus textfile every
  // 250 ms while the replay runs, exactly like a node_exporter textfile
  // collector deployment would consume it.
  telemetry::ReporterConfig reporter_config;
  reporter_config.interval = std::chrono::milliseconds{250};
  reporter_config.path = metrics_path;
  telemetry::SnapshotReporter reporter{engine.registry(), reporter_config};
  reporter.start();

  // Replay an epoch at a time so we can emit the periodic report the
  // operators of the real deployment would watch.
  const std::size_t epochs = 4;
  const std::size_t chunk = trace.packets.size() / epochs;
  for (std::size_t e = 0; e < epochs; ++e) {
    trace::Trace slice;
    slice.name = "epoch";
    const auto begin = trace.packets.begin() + static_cast<long>(e * chunk);
    const auto end = e + 1 == epochs ? trace.packets.end()
                                     : begin + static_cast<long>(chunk);
    slice.packets.assign(begin, end);
    const auto stats = engine.run(slice);

    std::printf("--- epoch %zu: %s at %.1f Mpps ---\n", e + 1,
                util::format_count(slice.packets.size()).c_str(), stats.mpps);
    std::printf("    top-3 byte flows:\n");
    for (const auto& item : engine.top_k_bytes(3)) {
      std::printf("      %-46s %s\n", item.key.to_string().c_str(),
                  util::format_bytes(static_cast<std::uint64_t>(item.bytes))
                      .c_str());
    }
    std::size_t occupancy = 0;
    std::uint64_t evictions = 0, gc = 0;
    double regulation = 0;
    for (unsigned w = 0; w < engine.workers(); ++w) {
      occupancy += engine.engine(w).wsaf().occupancy();
      evictions += engine.engine(w).wsaf().stats().evictions;
      gc += engine.engine(w).wsaf().stats().gc_reclaims;
      regulation += engine.engine(w).regulator().regulation_rate();
    }
    std::printf(
        "    wsaf: %s flows resident, %llu evictions, %llu gc reclaims; "
        "regulation %.2f%%\n",
        util::format_count(occupancy).c_str(),
        static_cast<unsigned long long>(evictions),
        static_cast<unsigned long long>(gc),
        100 * regulation / engine.workers());
  }

  // End-of-deployment accuracy audit against the recorded trace (the paper
  // recorded every packet to disk for exactly this comparison).
  const analysis::GroundTruth truth{trace};
  double total_err = 0;
  std::size_t n = 0;
  for (const auto& [key, t] : truth.flows()) {
    if (t.packets < 10'000) continue;
    const auto est = engine.query(key);
    total_err += std::abs(est.packets - static_cast<double>(t.packets)) /
                 static_cast<double>(t.packets);
    ++n;
  }
  std::printf("\naudit: mean |error| over %zu flows >=10K packets: %.2f%%\n",
              n, n ? 100 * total_err / static_cast<double>(n) : 0.0);
  std::printf("memory: %s sketch per worker + %s WSAF logical per worker\n",
              util::format_bytes(
                  config.engine.regulator.total_memory_bytes())
                  .c_str(),
              util::format_bytes(
                  engine.engine(0).wsaf().logical_memory_bytes())
                  .c_str());

  // Final snapshot + excerpt of what a scraper sees.
  reporter.stop();
  if (telemetry::kEnabled) {
    std::printf("\nmetrics: %llu snapshots written to %s; excerpt:\n",
                static_cast<unsigned long long>(reporter.snapshots_written()),
                metrics_path.c_str());
    const auto text = telemetry::to_prometheus(engine.registry().snapshot());
    std::size_t printed = 0, pos = 0;
    while (pos < text.size() && printed < 12) {
      const auto nl = text.find('\n', pos);
      const auto line = text.substr(pos, nl - pos);
      pos = nl == std::string::npos ? text.size() : nl + 1;
      if (line.starts_with("im_runtime_") || line.starts_with("im_wsaf_")) {
        std::printf("    %s\n", line.c_str());
        ++printed;
      }
    }
  }
  return 0;
}
