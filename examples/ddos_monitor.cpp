// DDoS monitor: the paper's motivating scenario (§I) — at 100 Gbps a
// 100 ms detection delay lets ~1.2 GB of attack traffic through, so
// detection latency is money.
//
// This example injects volumetric attacks of varying intensity into
// benign background traffic, runs InstaMeasure's online (saturation-based)
// detector next to a conventional delegation-based pipeline, and prints
// how much attack traffic each design lets through before raising the
// alarm.
//
// Usage: ./examples/ddos_monitor [--attacks=4] [--threshold=500]
//                                [--background capture.imtrace]
//                                [--trace-out out.trace.json]
//                                [--trace-spool out.imtrc]
//                                [--query-interval=250 [--pace-mpps=2.0]
//                                 [--workers=4]]
//                                [--interface=veth-im1 [--seconds=10]]
//
// --interface switches to LIVE capture: an AF_PACKET/TPACKET_V3 ring on the
// named port feeds the multicore engine (runtime::run_source) for --seconds
// of wall time while the main thread polls the query plane — top talkers
// straight off the wire. Needs CAP_NET_RAW; point tools/pktgen at the other
// end of a veth pair to exercise it. Exits 1 when the ring cannot open.
//
// --background replays a recorded trace (trace_io format) as the benign
// traffic instead of the synthetic campus mix; an unreadable or truncated
// file exits 1 with a one-line diagnostic.
//
// --query-interval=<ms> switches to live-dashboard mode: the trace replays
// through a MultiCoreEngine (paced by --pace-mpps) while the main thread
// polls the lock-free query plane every <ms> milliseconds — top talkers,
// active flow count, and snapshot staleness, printed while packets are
// still flowing. The paper's "instant" read path, live.
//
// --trace-out attaches the flight recorder to the replay and writes
// Chrome trace-event JSON on exit (open in https://ui.perfetto.dev to see
// each attack's packet -> saturation -> WSAF -> alarm chain); --trace-spool
// additionally keeps the raw binary spool for tools/trace_inspect.
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <exception>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "analysis/latency.h"
#include "analysis/stage_latency.h"
#include "audit/auditor.h"
#include "netio/afpacket.h"
#include "runtime/multicore.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "trace/generator.h"
#include "trace/trace_io.h"
#include "util/cli.h"
#include "util/format.h"

using namespace instameasure;

namespace {

/// Live-dashboard mode: replay through the multicore runtime while the
/// main thread reads the query plane. Everything printed here comes from
/// published WsafViews — the engines' tables are never touched.
int run_live_dashboard(const trace::Trace& trace, const util::CliArgs& args,
                       double query_interval_ms) {
  runtime::MultiCoreConfig mc;
  mc.workers = static_cast<unsigned>(args.get_int("workers", 4));
  mc.engine.regulator.l1_memory_bytes = 32 * 1024;
  mc.engine.wsaf.log2_entries = 18;
  // Live accuracy audit beside the throughput rows: every shard shadows
  // the same 1/16 slice of flow space (small demo traces need a fat slice
  // to catch flows) and the dashboard prints streaming ARE/recall.
  mc.engine.enable_audit = true;
  mc.engine.audit.sample_shift = 4;
  // Dashboard cadence: publish every 16 K packets per worker so the view
  // refreshes many times per polling interval even at modest pace.
  mc.query_plane.publish_every_packets = 1 << 14;
  const double pace_mpps = args.get_double("pace-mpps", 2.0);

  runtime::MultiCoreEngine engine{mc};
  const auto* queries = engine.queries();

  std::printf("live dashboard: %u workers, paced at %.1f Mpps, polling "
              "every %.0f ms\n\n",
              mc.workers, pace_mpps, query_interval_ms);

  std::atomic<bool> done{false};
  runtime::RunStats stats;
  std::thread runner([&] {
    stats = engine.run(trace, pace_mpps * 1e6);
    done.store(true, std::memory_order_release);
  });

  const auto t0 = std::chrono::steady_clock::now();
  const auto interval = std::chrono::duration<double, std::milli>(
      query_interval_ms);
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(interval);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto age = queries->snapshot_age_ns();
    const auto top = queries->top_k(3, core::TopKMetric::kPackets);
    std::printf("[%6.2fs] flows %7zu | view age %s | top:", elapsed,
                queries->active_flow_count(),
                age == UINT64_MAX
                    ? "    --"
                    : (std::to_string(age / 1'000'000) + " ms").c_str());
    for (const auto& item : top) {
      std::printf("  %u.%u.%u.%u (%.0f pkts)", item.key.src_ip >> 24,
                  (item.key.src_ip >> 16) & 0xff, (item.key.src_ip >> 8) & 0xff,
                  item.key.src_ip & 0xff, item.packets);
    }
    if constexpr (audit::kEnabled) {
      const auto a = queries->audit();
      if (a.comparisons > 0) {
        std::printf(" | audit: ARE %.1f%% recall %.0f%%",
                    a.are * 100, a.recall * 100);
      }
    }
    std::printf("\n");
  }
  runner.join();

  std::printf("\nreplay done: %.2f Mpps, %llu views published "
              "(%llu skipped), final active flows %zu\n",
              stats.mpps,
              static_cast<unsigned long long>(stats.views_published),
              static_cast<unsigned long long>(stats.view_publishes_skipped),
              queries->active_flow_count());
  const auto final_top = queries->top_k(5, core::TopKMetric::kPackets);
  std::printf("final top talkers (from the last published views):\n");
  for (const auto& item : final_top) {
    std::printf("  %u.%u.%u.%u -> %.0f packets, %s\n", item.key.src_ip >> 24,
                (item.key.src_ip >> 16) & 0xff, (item.key.src_ip >> 8) & 0xff,
                item.key.src_ip & 0xff, item.packets,
                util::format_bytes(static_cast<std::uint64_t>(item.bytes))
                    .c_str());
  }
  if constexpr (audit::kEnabled) {
    // The end-of-run audit summary is exact: each worker runs its
    // exactness sweep as it drains, so these equal the offline
    // analysis::metrics computation over the audited slice.
    const auto a = queries->audit();
    if (a.comparisons > 0) {
      std::printf("\naccuracy audit (exact shadow of 1/%llu of flow "
                  "space, %llu flows):\n",
                  1ull << mc.engine.audit.sample_shift,
                  static_cast<unsigned long long>(a.comparisons));
      std::printf("  ARE %.2f%% (bias %+.2f%%) | HH recall %.0f%% "
                  "precision %.0f%% (%llu true crossings)\n",
                  a.are * 100, a.mean_rel_bias * 100, a.recall * 100,
                  a.precision * 100,
                  static_cast<unsigned long long>(a.true_hh));
      std::printf("  undercounts %llu (sketch residual %llu, wsaf "
                  "eviction %llu, shed compensation %llu), "
                  "overcounts %llu\n",
                  static_cast<unsigned long long>(a.undercount),
                  static_cast<unsigned long long>(a.causes[0]),
                  static_cast<unsigned long long>(a.causes[1]),
                  static_cast<unsigned long long>(a.causes[2]),
                  static_cast<unsigned long long>(a.overcount));
    }
  }
  return 0;
}

/// Live-capture mode: the same dashboard, but the packets come off a real
/// interface through the AF_PACKET ring instead of a synthetic trace.
int run_live_capture(const util::CliArgs& args, const std::string& iface) {
  netio::AfPacketConfig cap;
  cap.interface = iface;
  // Modest ring for an example: 16 x 1 MB blocks, plenty for a veth demo.
  cap.block_size = 1u << 20;
  cap.block_count = 16;
  netio::AfPacketSource source{cap};
  if (!source.available()) {
    std::fprintf(stderr, "ddos_monitor: cannot capture on %s: %s\n",
                 iface.c_str(), source.error().c_str());
    return 1;
  }

  runtime::MultiCoreConfig mc;
  mc.workers = static_cast<unsigned>(args.get_int("workers", 4));
  mc.engine.regulator.l1_memory_bytes = 32 * 1024;
  mc.engine.wsaf.log2_entries = 18;
  mc.query_plane.publish_every_packets = 1 << 12;
  runtime::MultiCoreEngine engine{mc};
  const auto* queries = engine.queries();

  runtime::SourceRunConfig run_config;
  run_config.max_seconds = args.get_double("seconds", 10.0);
  run_config.stop_on_exhausted = false;  // quiet port != end of capture
  std::printf("live capture on %s: %u workers, %.0f s window\n\n",
              iface.c_str(), mc.workers, run_config.max_seconds);

  std::atomic<bool> done{false};
  runtime::RunStats stats;
  std::thread runner([&] {
    stats = engine.run_source(source, run_config);
    done.store(true, std::memory_order_release);
  });
  const auto t0 = std::chrono::steady_clock::now();
  while (!done.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const auto top = queries->top_k(3, core::TopKMetric::kPackets);
    std::printf("[%6.2fs] flows %7zu | top:", elapsed,
                queries->active_flow_count());
    for (const auto& item : top) {
      std::printf("  %u.%u.%u.%u (%.0f pkts)", item.key.src_ip >> 24,
                  (item.key.src_ip >> 16) & 0xff, (item.key.src_ip >> 8) & 0xff,
                  item.key.src_ip & 0xff, item.packets);
    }
    std::printf("\n");
  }
  runner.join();

  std::printf("\ncapture done: %llu packets (%.2f Mpps), kernel dropped "
              "%llu, undecodable %llu, fragments %llu, truncated %llu\n",
              static_cast<unsigned long long>(stats.packets), stats.mpps,
              static_cast<unsigned long long>(stats.io_kernel_dropped),
              static_cast<unsigned long long>(stats.io_skipped),
              static_cast<unsigned long long>(stats.io_fragments),
              static_cast<unsigned long long>(stats.io_truncated));
  const auto final_top = queries->top_k(5, core::TopKMetric::kPackets);
  std::printf("top talkers on the wire:\n");
  for (const auto& item : final_top) {
    std::printf("  %u.%u.%u.%u -> %.0f packets, %s\n", item.key.src_ip >> 24,
                (item.key.src_ip >> 16) & 0xff, (item.key.src_ip >> 8) & 0xff,
                item.key.src_ip & 0xff, item.packets,
                util::format_bytes(static_cast<std::uint64_t>(item.bytes))
                    .c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const auto n_attacks = static_cast<int>(args.get_int("attacks", 4));
  const double threshold = args.get_double("threshold", 500);

  std::printf("=== InstaMeasure DDoS monitor ===\n");

  if (const std::string iface = args.get("interface", ""); !iface.empty()) {
    return run_live_capture(args, iface);
  }

  // Benign background: a recorded trace if --background was given,
  // otherwise campus-like mice + a few legitimate elephants.
  trace::Trace trace;
  if (const std::string background_path = args.get("background", "");
      !background_path.empty()) {
    try {
      trace = trace::load_trace(background_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ddos_monitor: %s: %s\n", background_path.c_str(),
                   e.what());
      return 1;
    }
  } else {
    trace::TraceConfig background;
    background.duration_s = 3.0;
    background.tiers = {{5, 5'000, 20'000}};
    background.mice = {30'000, 1.05, 30};
    background.seed = 2024;
    trace = trace::generate(background);
  }

  // Attackers: increasing intensity, staggered onsets, 512B floods.
  struct Attack {
    netio::FlowKey key;
    double rate_pps;
    double start_s;
  };
  std::vector<Attack> attacks;
  for (int i = 0; i < n_attacks; ++i) {
    trace::AttackSpec spec;
    spec.rate_pps = 20'000.0 * (i + 1);
    spec.start_s = 0.3 + 0.5 * i;
    spec.duration_s = 1.2;
    spec.packet_len = 512;
    spec.seed = 7'000 + static_cast<std::uint64_t>(i);
    const auto key = inject_attack(trace, spec);
    attacks.push_back({key, spec.rate_pps, spec.start_s});
  }
  std::printf("background + %d attack flows, %zu packets total\n\n",
              n_attacks, trace.packets.size());

  if (const double query_interval_ms =
          args.get_double("query-interval", 0);
      query_interval_ms > 0) {
    return run_live_dashboard(trace, args, query_interval_ms);
  }

  // Detect with both strategies.
  analysis::LatencyConfig config;
  config.packet_threshold = threshold;
  config.epoch_ms = 10.0;          // delegation flush period
  config.network_delay_ms = 20.0;  // collector round trip
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 18;
  // The harness copies this config into its engine, so the registry sees
  // every metric the online detector produced during the replay.
  telemetry::Registry registry;
  config.engine.registry = &registry;

  // Optional flight recorder: one track (the replay is single-threaded),
  // sized to hold every per-packet event so nothing drops.
  const std::string trace_out = args.get("trace-out", "");
  const std::string trace_spool = args.get("trace-spool", "");
  std::unique_ptr<telemetry::TraceRecorder> recorder;
  std::unique_ptr<telemetry::TraceCollector> collector;
  if (!trace_out.empty() || !trace_spool.empty()) {
    telemetry::TraceConfig trace_config;
    trace_config.tracks = 1;
    trace_config.ring_capacity = std::bit_ceil(trace.packets.size() * 2);
    recorder = std::make_unique<telemetry::TraceRecorder>(trace_config);
    collector = std::make_unique<telemetry::TraceCollector>(*recorder);
    if (!trace_spool.empty() && !collector->open_spool(trace_spool)) {
      std::fprintf(stderr, "warning: cannot open %s\n", trace_spool.c_str());
    }
    config.engine.trace = recorder.get();
  }

  std::vector<netio::FlowKey> watched;
  for (const auto& a : attacks) watched.push_back(a.key);
  const auto rows = analysis::measure_detection_latency(trace, watched, config);

  std::printf("%-10s %-12s %-16s %-16s %-24s\n", "attack", "rate",
              "InstaMeasure", "delegation", "leakage saved");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const double rate = attacks[i].rate_pps;
    const double sat_ms = row.saturation_delay_ms().value_or(-1);
    const double del_ms = row.delegation_delay_ms().value_or(-1);
    // Bytes of attack traffic admitted between the two alarm times.
    const double saved_bytes =
        (del_ms - sat_ms) / 1e3 * rate * 512.0;
    std::printf("#%-9zu %-12s %13.2f ms %13.1f ms   %s less attack traffic\n",
                i + 1, util::format_rate(rate).c_str(), sat_ms, del_ms,
                util::format_bytes(static_cast<std::uint64_t>(
                                       std::max(0.0, saved_bytes)))
                    .c_str());
  }

  // The engine records first-seen-to-detection latency per detection; the
  // registry histogram gives the distribution across every alarm raised.
  const auto snapshot = registry.snapshot();
  if (const auto* sample =
          snapshot.find("im_engine_detection_latency_ns");
      sample != nullptr && sample->histogram && sample->histogram->count > 0) {
    const auto& h = *sample->histogram;
    std::printf(
        "\ndetection latency (flow first-seen -> alarm, %llu detections):\n"
        "    p50 %.2f ms   p90 %.2f ms   p99 %.2f ms   max %.2f ms\n",
        static_cast<unsigned long long>(h.count), h.quantile(0.50) / 1e6,
        h.quantile(0.90) / 1e6, h.quantile(0.99) / 1e6,
        static_cast<double>(h.max) / 1e6);
  }

  if (collector) {
    collector->drain();
    std::printf("\nflight recorder: %llu events (%llu dropped)\n",
                static_cast<unsigned long long>(collector->events().size()),
                static_cast<unsigned long long>(collector->dropped()));
    if constexpr (!telemetry::kEnabled) {
      std::printf("(telemetry compiled out: rebuild with "
                  "-DINSTAMEASURE_ENABLE_TELEMETRY=ON to record traces)\n");
    }
    const auto report = analysis::attribute_stages(
        std::span{collector->events()});
    std::fputs(analysis::format_stage_report(report).c_str(), stdout);
    if (!trace_out.empty()) {
      // to_chrome_json works in both build flavors (the compiled-out
      // collector just renders an empty-but-valid trace).
      const auto json = telemetry::to_chrome_json(
          std::span{collector->events()});
      if (std::FILE* f = std::fopen(trace_out.c_str(), "wb")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
        std::printf("wrote Chrome trace JSON to %s (open in "
                    "https://ui.perfetto.dev)\n",
                    trace_out.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write %s\n", trace_out.c_str());
      }
    }
    if (!trace_spool.empty()) {
      std::printf("binary spool at %s (inspect with tools/trace_inspect)\n",
                  trace_spool.c_str());
    }
  }

  std::printf("\nThe online detector needs no collector round trip: the "
              "moment a FlowRegulator saturation pushes the WSAF counter "
              "over T, the alarm fires — the paper's 'Insta'.\n");
  return 0;
}
