// pcap_topk: measure a pcap capture and print its top-K flows — the
// offline-analysis face of InstaMeasure, exercising the full stack:
// pcap parsing -> Ethernet/IPv4/L4 decode -> FlowRegulator -> WSAF -> top-K.
//
// Usage:
//   ./examples/pcap_topk capture.pcap [--k=10]
//   ./examples/pcap_topk --demo            (writes & measures a demo pcap)
//
// Unreadable or truncated captures exit 1 with a one-line diagnostic —
// never a crash (tests feed the seeds in tests/corpus/ through here).
#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>

#include "core/instameasure.h"
#include "netio/pcap.h"
#include "trace/generator.h"
#include "util/cli.h"
#include "util/format.h"

using namespace instameasure;

namespace {

std::string make_demo_pcap() {
  const auto path =
      (std::filesystem::temp_directory_path() / "instameasure_demo.pcap")
          .string();
  trace::TraceConfig config;
  config.duration_s = 5.0;
  config.tiers = {{3, 20'000, 60'000}, {15, 1'000, 5'000}};
  config.mice = {20'000, 1.1, 30};
  config.seed = 99;
  const auto trace = trace::generate(config);
  netio::save_pcap(path, trace.packets);
  std::printf("wrote demo capture: %s (%zu packets)\n", path.c_str(),
              trace.packets.size());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const auto k = static_cast<std::size_t>(args.get_int("k", 10));

  std::string path;
  if (args.get_bool("demo", false) || args.positional().empty()) {
    path = make_demo_pcap();
  } else {
    path = args.positional().front();
  }

  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{config};

  std::uint64_t packets = 0, bytes = 0, skipped = 0;
  try {
    netio::PcapReader reader{path};
    while (const auto rec = reader.next_record()) {
      engine.process(*rec);
      ++packets;
      bytes += rec->wire_len;
    }
    skipped = reader.skipped();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "pcap_topk: %s: %s\n", path.c_str(), e.what());
    return 1;
  }
  std::printf("\nmeasured %s: %s packets, %s (%llu frames skipped as "
              "non-IPv4/L4)\n",
              path.c_str(), util::format_count(packets).c_str(),
              util::format_bytes(bytes).c_str(),
              static_cast<unsigned long long>(skipped));

  std::printf("\ntop-%zu flows by packets:\n", k);
  std::printf("  %-46s %12s %14s\n", "flow", "packets", "bytes");
  for (const auto& item : engine.top_k_packets(k)) {
    std::printf("  %-46s %12.0f %14.0f\n", item.key.to_string().c_str(),
                item.packets, item.bytes);
  }

  std::printf("\ntop-%zu flows by bytes:\n", k);
  for (const auto& item : engine.top_k_bytes(k)) {
    std::printf("  %-46s %12.0f %14.0f\n", item.key.to_string().c_str(),
                item.packets, item.bytes);
  }

  std::printf("\n%zu flows resident in WSAF; regulation %.2f%%\n",
              engine.wsaf().occupancy(),
              100 * engine.regulator().regulation_rate());
  return 0;
}
