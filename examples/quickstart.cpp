// Quickstart: the InstaMeasure public API in ~60 lines.
//
//   1. Build an engine (FlowRegulator + in-DRAM WSAF).
//   2. Feed it packets.
//   3. Query any flow at any time — no remote collector, no offline decode.
//
// Build & run:  ./examples/quickstart
#include <cstdio>

#include "core/instameasure.h"
#include "trace/generator.h"

using namespace instameasure;

int main() {
  // 1. Configure: the paper's defaults — 32KB L1 (128KB total sketch),
  //    2^20-entry WSAF (33MB logical), heavy-hitter threshold 10k packets.
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 20;
  config.heavy_hitter.packet_threshold = 10'000;
  core::InstaMeasure engine{config};

  // 2. A synthetic workload: a few elephants over a mice-dominated tail.
  trace::TraceConfig workload;
  workload.duration_s = 10.0;
  workload.tiers = {{3, 50'000, 150'000}, {20, 2'000, 10'000}};
  workload.mice = {50'000, 1.1, 40};
  workload.seed = 7;
  const auto trace = trace::generate(workload);
  std::printf("replaying %zu packets (%zu+ flows)...\n", trace.packets.size(),
              workload.mice.n_flows);

  for (const auto& rec : trace.packets) {
    engine.process(rec);  // the entire fast path: one call per packet
  }

  // 3a. Per-flow query: WSAF record + sketch residual, available online.
  const auto& probe = trace.packets.front().key;
  const auto est = engine.query(probe);
  std::printf("\nflow %s -> ~%.0f packets, ~%.0f bytes (in WSAF: %s)\n",
              probe.to_string().c_str(), est.packets, est.bytes,
              est.in_wsaf ? "yes" : "no");

  // 3b. Top-K directly from the WSAF (scales to K in the millions).
  std::printf("\ntop-5 flows by packets:\n");
  for (const auto& item : engine.top_k_packets(5)) {
    std::printf("  %-46s %10.0f pkts %14.0f bytes\n",
                item.key.to_string().c_str(), item.packets, item.bytes);
  }

  // 3c. Heavy hitters were flagged online, during the replay.
  std::printf("\nheavy hitters (threshold %.0f packets): %zu detected\n",
              config.heavy_hitter.packet_threshold,
              engine.detections().size());
  for (const auto& det : engine.detections()) {
    std::printf("  %-46s at t=%.3fs (count %.0f)\n",
                det.key.to_string().c_str(),
                static_cast<double>(det.detected_at_ns) / 1e9,
                det.value_at_detection);
  }

  // Engine internals, for the curious.
  std::printf("\nregulation: %.2f%% of %llu packets reached the WSAF "
              "(%zu flows resident)\n",
              100 * engine.regulator().regulation_rate(),
              static_cast<unsigned long long>(engine.packets_processed()),
              engine.wsaf().occupancy());
  return 0;
}
