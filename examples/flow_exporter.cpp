// Flow exporter: InstaMeasure as a drop-in flow-record source.
//
//   capture (pcap or pcapng) -> measure -> export:
//     * IPFIX flow records (RFC 7011 subset) for any standard collector
//     * a binary WSAF snapshot for later offline analysis
//
// Usage:
//   ./examples/flow_exporter capture.pcap --out=flows.ipfix
//   ./examples/flow_exporter --demo      (synthesizes a pcapng capture)
//   ./examples/flow_exporter --restore=wsaf.snapshot   (validate + summarize)
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>

#include "core/instameasure.h"
#include "core/wsaf_export.h"
#include "netio/pcapng.h"
#include "trace/generator.h"
#include "util/cli.h"
#include "util/format.h"

using namespace instameasure;

namespace {

std::string make_demo_pcapng() {
  const auto path =
      (std::filesystem::temp_directory_path() / "instameasure_demo.pcapng")
          .string();
  trace::TraceConfig config;
  config.duration_s = 4.0;
  config.tiers = {{4, 10'000, 40'000}, {20, 500, 4'000}};
  config.mice = {15'000, 1.1, 25};
  config.seed = 77;
  const auto trace = trace::generate(config);
  netio::PcapngWriter writer{path};
  for (const auto& rec : trace.packets) writer.write_record(rec);
  std::printf("wrote demo capture (pcapng): %s (%llu packets)\n", path.c_str(),
              static_cast<unsigned long long>(writer.packets_written()));
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};

  // Restore-only mode: load (and fully validate) a WSAF snapshot, print a
  // one-line summary, exit. Corrupt or unknown-format snapshots must yield
  // a one-line diagnostic and a nonzero exit — never a crash. The corrupt
  // files under tests/corpus/ run through this path as BadInput.* tests.
  if (const auto restore = args.get("restore", ""); !restore.empty()) {
    try {
      const auto table = core::WsafTable::load(restore);
      std::printf(
          "restored %s: %zu flows, 2^%u slots, probe %u, layout %s "
          "(eviction policy v%u)\n",
          restore.c_str(), table.occupancy(), table.config().log2_entries,
          table.config().probe_limit, core::to_string(table.config().layout),
          table.policy_version());
      return 0;
    } catch (const std::exception& e) {
      std::fprintf(stderr, "flow_exporter: %s\n", e.what());
      return 1;
    }
  }

  std::string input;
  if (args.get_bool("demo", false) || args.positional().empty()) {
    input = make_demo_pcapng();
  } else {
    input = args.positional().front();
  }
  const auto out_path = args.get("out", "/tmp/instameasure_flows.ipfix");
  const auto snapshot_path =
      args.get("snapshot", "/tmp/instameasure_wsaf.snapshot");

  // Measure. load_capture sniffs the format (classic pcap vs pcapng).
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{config};
  const auto packets = netio::load_capture(input);
  for (const auto& rec : packets) engine.process(rec);
  std::printf("measured %zu packets -> %zu flows resident in WSAF "
              "(regulation %.2f%%)\n",
              packets.size(), engine.wsaf().occupancy(),
              100 * engine.regulator().regulation_rate());

  // Export IPFIX.
  const auto messages = core::export_wsaf_ipfix(
      engine.wsaf(), /*export_time_s=*/1'700'000'000, /*sequence=*/1);
  {
    std::ofstream out{out_path, std::ios::binary | std::ios::trunc};
    for (const auto& msg : messages) {
      out.write(reinterpret_cast<const char*>(msg.data()),
                static_cast<std::streamsize>(msg.size()));
    }
  }
  std::size_t total_bytes = 0;
  for (const auto& msg : messages) total_bytes += msg.size();
  std::printf("exported %zu IPFIX message(s), %s -> %s\n", messages.size(),
              util::format_bytes(total_bytes).c_str(), out_path.c_str());

  // Save the WSAF snapshot for offline re-analysis.
  engine.wsaf().save(snapshot_path);
  std::printf("saved WSAF snapshot -> %s\n", snapshot_path.c_str());

  // Prove the records round-trip: decode the first message back.
  if (!messages.empty()) {
    if (const auto decoded = netio::ipfix_decode(messages.front())) {
      std::printf("\nfirst %zu exported records (of %zu in message 1):\n",
                  std::min<std::size_t>(5, decoded->size()), decoded->size());
      for (std::size_t i = 0; i < decoded->size() && i < 5; ++i) {
        const auto& rec = (*decoded)[i];
        std::printf("  %-46s %8llu pkts %12llu bytes\n",
                    rec.key.to_string().c_str(),
                    static_cast<unsigned long long>(rec.packets),
                    static_cast<unsigned long long>(rec.octets));
      }
    }
  }

  // And that the snapshot restores.
  const auto restored = core::WsafTable::load(snapshot_path);
  std::printf("\nsnapshot restore check: %zu flows (expected %zu)\n",
              restored.occupancy(), engine.wsaf().occupancy());
  return restored.occupancy() == engine.wsaf().occupancy() ? 0 : 1;
}
