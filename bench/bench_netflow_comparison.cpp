// Equal-insertion-budget comparison vs sampled NetFlow (paper §II).
//
// NetFlow relaxes {ips = pps} by *sampling*: at 1/100 its table-update rate
// matches FlowRegulator's ~1% regulation — but sampling discards the
// information, so mid-size flows get ~10x the error and most mice become
// invisible, while the regulator *retains* packets and stays accurate.
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "baselines/netflow.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Baseline table — sampled NetFlow vs InstaMeasure at equal ips budget",
      "relaxing ips by sampling costs accuracy and mice visibility; "
      "relaxing it by retention (FlowRegulator) does not");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  // InstaMeasure at the paper's default 128KB sketch.
  core::EngineConfig im_config;
  im_config.regulator.l1_memory_bytes = 32 * 1024;
  im_config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{im_config};
  for (const auto& rec : trace.packets) engine.process(rec);

  // NetFlow sampled so its update rate matches the regulator's.
  baselines::NetFlowConfig nf_config;
  nf_config.sampling_n = static_cast<std::uint32_t>(
      1.0 / std::max(1e-4, engine.regulator().regulation_rate()));
  nf_config.max_entries = 1 << 20;
  baselines::SampledNetFlow netflow{nf_config};
  for (const auto& rec : trace.packets) netflow.offer(rec);

  std::printf("update rates: InstaMeasure %.2f%%  NetFlow(1/%u) %.2f%%\n",
              100 * engine.regulator().regulation_rate(), nf_config.sampling_n,
              100 * netflow.table_update_rate());

  const std::vector<std::uint64_t> bands{1'000, 10'000, 100'000};
  const auto im_errors = analysis::banded_errors(
      truth,
      [&](const netio::FlowKey& key) { return engine.query(key).packets; },
      bands, false);
  const auto nf_errors = analysis::banded_errors(
      truth,
      [&](const netio::FlowKey& key) { return netflow.estimate_packets(key); },
      bands, false);

  analysis::Table table{{"scheme", "err 1K+ (n)", "err 10K+ (n)",
                         "err 100K+ (n)", "mice visibility"}};
  // Mice visibility: share of 1-10 packet flows with a nonzero estimate.
  auto mice_visibility = [&](auto estimator) {
    std::uint64_t seen = 0, total = 0;
    for (const auto& [key, t] : truth.flows()) {
      if (t.packets > 10) continue;
      ++total;
      if (estimator(key) > 0) ++seen;
    }
    return total ? static_cast<double>(seen) / static_cast<double>(total)
                 : 0.0;
  };
  const double im_vis = mice_visibility(
      [&](const netio::FlowKey& key) { return engine.query(key).packets; });
  const double nf_vis = mice_visibility(
      [&](const netio::FlowKey& key) { return netflow.estimate_packets(key); });

  auto err_cell = [](const analysis::ErrorBand& band) {
    return analysis::cell("%.2f%% (%llu)", 100 * band.mean_abs_rel_error,
                          static_cast<unsigned long long>(band.flows));
  };
  table.add_row({"InstaMeasure (128KB + 33MB WSAF)", err_cell(im_errors[0]),
                 err_cell(im_errors[1]), err_cell(im_errors[2]),
                 analysis::cell("%.0f%%", 100 * im_vis)});
  table.add_row({analysis::cell("NetFlow 1/%u sampled", nf_config.sampling_n),
                 err_cell(nf_errors[0]), err_cell(nf_errors[1]),
                 err_cell(nf_errors[2]),
                 analysis::cell("%.0f%%", 100 * nf_vis)});
  table.print();

  bench::shape_check(im_errors[0].mean_abs_rel_error <
                         nf_errors[0].mean_abs_rel_error / 3,
                     "mid-size flows: retention beats sampling by >3x");
  bench::shape_check(im_vis > 0.9 && nf_vis < 0.2,
                     "mice remain visible through the regulator's residual, "
                     "invisible to sampled NetFlow");
  bench::shape_check(std::abs(netflow.table_update_rate() -
                              engine.regulator().regulation_rate()) <
                         0.01,
                     "comparison holds at matched insertion budgets");
  return 0;
}
