// Fig 14: heavy-hitter detection accuracy in the wild — false negatives
// negligible in both metrics; false positives <0.1% (packet HH) and <0.2%
// (byte HH).
//
// Reproduction: campus-like trace, sweep detection thresholds, report the
// FP/FN rates of the engine's online saturation-based detector for packet
// and byte heavy hitters.
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  bench::print_header(
      "Fig 14 — heavy-hitter detection FP/FN in the wild",
      "false negatives negligible; FP <0.1% (packet HH) and <0.2% (byte HH)");

  const auto trace =
      trace::generate(trace::campus_config(scale, 240.0, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  analysis::Table table{{"metric", "threshold", "true HH", "detected", "TP",
                         "FP", "FN", "FP rate", "FN rate"}};
  double worst_fp_pkt = 0, worst_fn_pkt = 0;
  double worst_fp_byte = 0, worst_fn_byte = 0;

  for (const double threshold : {20'000.0, 50'000.0, 100'000.0}) {
    core::EngineConfig config;
    config.regulator.l1_memory_bytes = 32 * 1024;
    config.wsaf.log2_entries = 20;
    config.heavy_hitter.packet_threshold = threshold;
    core::InstaMeasure engine{config};
    for (const auto& rec : trace.packets) engine.process(rec);

    std::vector<netio::FlowKey> detected;
    for (const auto& det : engine.detections()) {
      if (det.metric == core::TopKMetric::kPackets) detected.push_back(det.key);
    }
    const auto acc =
        analysis::heavy_hitter_accuracy(truth, detected, threshold, false);
    worst_fp_pkt = std::max(worst_fp_pkt, acc.fp_rate());
    worst_fn_pkt = std::max(worst_fn_pkt, acc.fn_rate());
    table.add_row({"packets", util::format_count(
                                  static_cast<std::uint64_t>(threshold)),
                   util::format_count(acc.true_hh_count),
                   util::format_count(acc.detected_count),
                   util::format_count(acc.true_positives),
                   util::format_count(acc.false_positives),
                   util::format_count(acc.false_negatives),
                   analysis::cell("%.2f%%", 100 * acc.fp_rate()),
                   analysis::cell("%.2f%%", 100 * acc.fn_rate())});
  }

  for (const double threshold : {20e6, 50e6, 100e6}) {
    core::EngineConfig config;
    config.regulator.l1_memory_bytes = 32 * 1024;
    config.wsaf.log2_entries = 20;
    config.heavy_hitter.byte_threshold = threshold;
    core::InstaMeasure engine{config};
    for (const auto& rec : trace.packets) engine.process(rec);

    std::vector<netio::FlowKey> detected;
    for (const auto& det : engine.detections()) {
      if (det.metric == core::TopKMetric::kBytes) detected.push_back(det.key);
    }
    const auto acc =
        analysis::heavy_hitter_accuracy(truth, detected, threshold, true);
    worst_fp_byte = std::max(worst_fp_byte, acc.fp_rate());
    worst_fn_byte = std::max(worst_fn_byte, acc.fn_rate());
    table.add_row({"bytes", util::format_bytes(
                                static_cast<std::uint64_t>(threshold)),
                   util::format_count(acc.true_hh_count),
                   util::format_count(acc.detected_count),
                   util::format_count(acc.true_positives),
                   util::format_count(acc.false_positives),
                   util::format_count(acc.false_negatives),
                   analysis::cell("%.2f%%", 100 * acc.fp_rate()),
                   analysis::cell("%.2f%%", 100 * acc.fn_rate())});
  }
  table.print();

  // The paper's rates are per-detection shares on a 122M-flow population;
  // estimation noise only flips flows within a whisker of the threshold,
  // so both rates stay small.
  bench::shape_check(worst_fn_pkt < 0.03 && worst_fn_byte < 0.03,
                     "false negatives negligible in both metrics");
  bench::shape_check(worst_fp_pkt < 0.05,
                     "packet-HH false positives small (paper: <0.1%)");
  bench::shape_check(worst_fp_byte < 0.06,
                     "byte-HH false positives small (paper: <0.2%)");
  return 0;
}
