// Fig 8: retention capacity, saturation frequency, and accuracy vs virtual
// vector size — RCC's retention grows additively with the vector while
// FlowRegulator's two layers grow it multiplicatively, at a small accuracy
// cost (worst at 8 total bits, i.e. 4 per layer).
//
// Reproduction: drive a single elephant flow through RCC (vector sizes
// 8..64) and FlowRegulator (total sizes 8..64, split across two layers),
// measuring packets-per-WSAF-insertion (retention), saturations per packet
// (frequency), and the end-to-end estimate error.
#include "bench_common.h"

#include "core/flow_regulator.h"
#include "sketch/rcc.h"

using namespace instameasure;

namespace {

struct SingleFlowResult {
  double retention = 0;   ///< packets per emitted WSAF insertion
  double frequency = 0;   ///< insertions per packet
  double abs_error = 0;   ///< |estimate - truth| / truth
};

constexpr std::uint64_t kPackets = 3'000'000;
constexpr std::uint64_t kFlowHash = 0xFEEDFACE12345ULL;

SingleFlowResult run_rcc(unsigned vv_bits) {
  sketch::RccConfig config;
  config.memory_bytes = 64 * 1024;
  config.vv_bits = vv_bits;
  sketch::RccSketch rcc{config};
  const auto layout = rcc.layout_of(kFlowHash);
  double estimate = 0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    if (const auto noise = rcc.encode(layout)) estimate += rcc.unit(*noise);
  }
  estimate += rcc.residual_estimate(layout);
  SingleFlowResult out;
  out.frequency = rcc.regulation_rate();
  out.retention = out.frequency > 0 ? 1.0 / out.frequency : 0.0;
  out.abs_error =
      std::abs(estimate - static_cast<double>(kPackets)) / kPackets;
  return out;
}

SingleFlowResult run_fr(unsigned total_bits) {
  core::FlowRegulatorConfig config;
  config.l1_memory_bytes = 64 * 1024;
  config.vv_bits = total_bits / 2;  // split across the two layers
  core::FlowRegulator fr{config};
  double estimate = 0;
  for (std::uint64_t i = 0; i < kPackets; ++i) {
    if (const auto event = fr.offer(kFlowHash, 500)) {
      estimate += event->est_packets;
    }
  }
  estimate += fr.residual_packets(kFlowHash);
  SingleFlowResult out;
  out.frequency = fr.regulation_rate();
  out.retention = out.frequency > 0 ? 1.0 / out.frequency : 0.0;
  out.abs_error =
      std::abs(estimate - static_cast<double>(kPackets)) / kPackets;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  (void)args;

  bench::print_header(
      "Fig 8 — retention capacity / saturation frequency / accuracy vs "
      "vector size",
      "(a) FR's retention grows multiplicatively (16-bit FR ~ 100 pkts vs "
      "RCC 64-bit ~ 77); (b) FR saturates orders of magnitude less often; "
      "(c) accuracy cost is small except at 8 total bits");

  analysis::Table table{{"vector bits", "scheme", "retention (pkts/insert)",
                         "saturation freq", "abs rel error"}};
  struct Row {
    unsigned bits;
    SingleFlowResult rcc, fr;
  };
  std::vector<Row> rows;
  for (const unsigned bits : {8u, 16u, 32u, 64u}) {
    Row row;
    row.bits = bits;
    row.rcc = run_rcc(bits);
    row.fr = run_fr(bits);
    rows.push_back(row);
    table.add_row({analysis::cell("%u", bits), "RCC",
                   analysis::cell("%.1f", row.rcc.retention),
                   analysis::cell("%.4f", row.rcc.frequency),
                   analysis::cell("%.2f%%", 100 * row.rcc.abs_error)});
    table.add_row({analysis::cell("%u", bits), "FlowRegulator (2x" +
                                                   std::to_string(bits / 2) +
                                                   ")",
                   analysis::cell("%.1f", row.fr.retention),
                   analysis::cell("%.4f", row.fr.frequency),
                   analysis::cell("%.2f%%", 100 * row.fr.abs_error)});
  }
  table.print();

  const auto& r16 = rows[1];  // 16-bit row
  const auto& r64 = rows[3];
  bench::shape_check(r16.fr.retention > 50 && r16.fr.retention < 250,
                     "FR(16-bit) retains ~100 packets per insertion");
  bench::shape_check(r16.fr.retention > 3.0 * r16.rcc.retention,
                     "FR(16) beats RCC(16) multiplicatively on retention");
  bench::shape_check(r64.rcc.retention < 1.3 * r16.fr.retention,
                     "even RCC(64) is at best comparable to FR(16) "
                     "(paper: RCC-64 ~ 77 pkts, impractical anyway)");
  bench::shape_check(rows[0].fr.abs_error > r16.fr.abs_error,
                     "8 total bits (4 per layer) is the accuracy worst case");
  bench::shape_check(r16.fr.abs_error < 0.05,
                     "FR(16-bit) single-flow error stays within a few %");
  return 0;
}
