// Fig 9(b): heavy-hitter detection latency vs attacker rate — ~10 ms at
// 10 kpps falling to ~1 ms at 130+ kpps for saturation-based decoding;
// delegation-based decoding pays tens of ms regardless.
//
// Reproduction: inject constant-rate attack flows (10-200 kpps) into a
// background trace, detect with threshold T, and report the delay of
// saturation-based vs delegation-based decoding relative to the exact
// packet-arrival crossing.
#include "bench_common.h"

#include "analysis/latency.h"
#include "delegation/reliable.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Fig 9(b) — heavy-hitter detection latency vs attack rate",
      "saturation-based decoding detects within ~10 ms at 10 kpps and ~1 ms "
      "at 130+ kpps; faster attackers are caught sooner; delegation costs "
      "tens of ms");

  analysis::LatencyConfig config;
  // T = 0.05% of a 1 Gbps link in pps terms (paper's threshold): with
  // ~1.5 Mpps capacity that is ~750 pkts; we use 500 like the lab setup.
  config.packet_threshold = 500;
  config.epoch_ms = 10.0;
  config.network_delay_ms = 20.0;
  config.engine.regulator.l1_memory_bytes = 32 * 1024;
  config.engine.wsaf.log2_entries = 18;
  telemetry::Registry registry;
  config.engine.registry = &registry;

  analysis::Table table{{"attack rate", "truth cross (ms)",
                         "saturation delay (ms)", "delegation delay (ms)"}};
  std::vector<double> rates{10'000, 30'000, 50'000, 70'000,
                            100'000, 130'000, 160'000, 200'000};
  std::vector<double> sat_delays;
  double delegation_min = 1e18;

  for (const double rate : rates) {
    trace::TraceConfig background;
    background.duration_s = 2.0;
    background.mice = {20'000, 1.0, 20};
    background.seed = seed;
    auto trace = trace::generate(background);
    trace::AttackSpec spec;
    spec.rate_pps = rate;
    spec.start_s = 0.2;
    spec.duration_s = 1.5;
    spec.seed = seed + static_cast<std::uint64_t>(rate);
    const auto key = inject_attack(trace, spec);

    const auto rows = analysis::measure_detection_latency(trace, {key}, config);
    if (rows.empty() || !rows[0].saturation_delay_ms()) {
      table.add_row({util::format_rate(rate), "-", "not detected", "-"});
      continue;
    }
    const double sat = *rows[0].saturation_delay_ms();
    const double del = rows[0].delegation_delay_ms().value_or(-1);
    sat_delays.push_back(sat);
    if (del >= 0) delegation_min = std::min(delegation_min, del);
    table.add_row(
        {util::format_rate(rate),
         analysis::cell("%.2f", static_cast<double>(rows[0].truth_ns) / 1e6),
         analysis::cell("%.3f", sat),
         del >= 0 ? analysis::cell("%.1f", del) : "not detected"});
  }
  table.print();

  bench::shape_check(!sat_delays.empty() && sat_delays.front() < 15.0,
                     "10 kpps attacker detected within ~10-15 ms");
  bench::shape_check(sat_delays.size() >= 6 && sat_delays[5] < 2.0,
                     "130 kpps attacker detected within ~1-2 ms");
  bench::shape_check(sat_delays.back() < sat_delays.front(),
                     "heavier attackers are detected faster");
  bench::shape_check(delegation_min > 10.0,
                     "delegation-based decoding pays >=10 ms (epoch + "
                     "network delay) regardless of rate");

  // ---- lossy vs reliable delegation over a 20% lossy channel ----
  // The paper's case against remote collectors assumes delivery; real
  // channels drop sketches. Sequencing alone (max_retransmits = 0) only
  // *counts* the lost epochs; ack/retransmit (reliable.h) repairs every
  // gap at the price of retransmissions and recovery latency.
  std::printf("\nlossy vs reliable delegation (100 kpps attacker, 20%% loss "
              "on data and ack channels):\n");
  {
    trace::TraceConfig background;
    background.duration_s = 2.0;
    background.mice = {20'000, 1.0, 20};
    background.seed = seed;
    auto trace = trace::generate(background);
    trace::AttackSpec spec;
    spec.rate_pps = 100'000;
    spec.start_s = 0.2;
    spec.duration_s = 1.5;
    spec.seed = seed + 7;
    const auto key = inject_attack(trace, spec);

    delegation::PipelineConfig pc;
    pc.epoch_ms = config.epoch_ms;
    pc.packet_threshold = config.packet_threshold;
    pc.channel.delay_ms = config.network_delay_ms;
    pc.channel.loss_rate = 0.2;
    pc.reliable.ack_channel.loss_rate = 0.2;

    analysis::Table loss_table{{"transport", "epochs", "recovered", "gaps",
                                "retransmits", "detect (ms)"}};
    const auto run_transport = [&](const char* name, unsigned budget) {
      auto run_config = pc;
      run_config.reliable.max_retransmits = budget;
      const auto run =
          delegation::run_reliable_pipeline(trace.packets, run_config, {key});
      const auto it = run.detections.find(key);
      loss_table.add_row(
          {name, analysis::cell("%llu", (unsigned long long)run.epochs),
           analysis::cell("%llu", (unsigned long long)run.epochs_recovered),
           analysis::cell("%llu", (unsigned long long)run.gaps),
           analysis::cell("%llu", (unsigned long long)run.retransmits),
           it == run.detections.end()
               ? "not detected"
               : analysis::cell("%.1f",
                                static_cast<double>(it->second) / 1e6)});
      return run;
    };
    const auto lossy = run_transport("sequenced lossy", 0);
    const auto reliable = run_transport("ack/retransmit", 16);
    loss_table.print();

    bench::shape_check(lossy.gaps > 0,
                       "20% channel loss leaves permanent epoch gaps without "
                       "retransmission");
    bench::shape_check(reliable.gaps == 0,
                       "ack/retransmit recovers every epoch at 20% loss");
    bench::shape_check(reliable.retransmits > 0,
                       "recovery is paid for with retransmissions");
  }

  bench::print_metrics_json(registry);
  return 0;
}
