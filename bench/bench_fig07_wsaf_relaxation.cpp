// Fig 7: WSAF ips relaxation over the CAIDA timeline — FlowRegulator passes
// only ~1.02% of packets through to the WSAF table with 128KB of memory,
// versus ~12% for single-layer RCC, giving the in-DRAM WSAF a comfortable
// speed margin.
//
// Reproduction: replay the trace through both front-ends side by side,
// print the per-interval pps / RCC-ips / FR-ips series, and evaluate both
// against the memory model.
#include "bench_common.h"

#include "core/flow_regulator.h"
#include "memmodel/memory_model.h"
#include "sketch/rcc.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Fig 7 — WSAF ips relaxation: FlowRegulator vs RCC",
      "FR regulates to ~1.02% with 128KB; RCC only to ~12% — FR fits the "
      "SRAM-over-DRAM margin, RCC does not");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);

  // Both front-ends get the same 128KB budget: FR = 32KB L1 + 3x32KB L2;
  // RCC = one 128KB array (the comparison the paper draws).
  core::FlowRegulatorConfig fr_config;
  fr_config.l1_memory_bytes = 32 * 1024;
  core::FlowRegulator fr{fr_config};

  sketch::RccConfig rcc_config;
  rcc_config.memory_bytes = 128 * 1024;
  rcc_config.vv_bits = 8;
  sketch::RccSketch rcc{rcc_config};

  const double interval_s = trace.duration_s() / 10.0;
  const auto interval_ns = static_cast<std::uint64_t>(interval_s * 1e9);
  const auto t0 = trace.packets.front().timestamp_ns;

  analysis::Table table{
      {"t (s)", "pps", "RCC ips", "RCC %", "FR ips", "FR %"}};
  std::uint64_t bucket_pkts = 0, prev_rcc = 0, prev_fr = 0;
  std::uint64_t bucket_rcc = 0, bucket_fr = 0;
  std::uint64_t bucket_end = t0 + interval_ns;
  double bucket_t = interval_s;

  auto flush_bucket = [&] {
    if (bucket_pkts == 0) return;
    const double pps = static_cast<double>(bucket_pkts) / interval_s;
    const double rcc_ips = static_cast<double>(bucket_rcc) / interval_s;
    const double fr_ips = static_cast<double>(bucket_fr) / interval_s;
    table.add_row({analysis::cell("%.0f", bucket_t), util::format_rate(pps),
                   util::format_rate(rcc_ips),
                   analysis::cell("%.2f%%", 100.0 * rcc_ips / pps),
                   util::format_rate(fr_ips),
                   analysis::cell("%.2f%%", 100.0 * fr_ips / pps)});
    bucket_pkts = bucket_rcc = bucket_fr = 0;
    bucket_t += interval_s;
  };

  for (const auto& rec : trace.packets) {
    while (rec.timestamp_ns >= bucket_end) {
      flush_bucket();
      bucket_end += interval_ns;
    }
    const auto hash = rec.key.hash();
    (void)rcc.encode(rcc.layout_of(hash));
    (void)fr.offer(hash, rec.wire_len);
    ++bucket_pkts;
    bucket_rcc += rcc.saturations() - prev_rcc;
    bucket_fr += fr.l2_saturations() - prev_fr;
    prev_rcc = rcc.saturations();
    prev_fr = fr.l2_saturations();
  }
  flush_bucket();
  table.print();

  const double rcc_reg = rcc.regulation_rate();
  const double fr_reg = fr.regulation_rate();
  std::printf("\noverall: RCC = %.2f%%  FlowRegulator = %.2f%%  (FR/RCC = %.1fx"
              " reduction)\n",
              100 * rcc_reg, 100 * fr_reg, rcc_reg / fr_reg);

  const memmodel::WsafBudget budget;
  const double line_rate_pps = 150e6;
  std::printf("memmodel at %s: DRAM feasible with FR? %s; with RCC? %s\n",
              util::format_rate(line_rate_pps).c_str(),
              budget.feasible(memmodel::MemoryKind::kDram, line_rate_pps, fr_reg)
                  ? "YES"
                  : "no",
              budget.feasible(memmodel::MemoryKind::kDram, line_rate_pps,
                              rcc_reg)
                  ? "yes"
                  : "NO");

  bench::shape_check(fr_reg < 0.03, "FR regulation ~1-3% (paper: 1.02%)");
  bench::shape_check(rcc_reg > 0.08, "RCC regulation ~10%+ (paper: 12%)");
  bench::shape_check(rcc_reg / fr_reg > 5.0,
                     "FR reduces WSAF ips by >5x vs RCC");
  return 0;
}
