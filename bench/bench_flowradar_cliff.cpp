// Related-work comparison (paper §VI): FlowRadar vs InstaMeasure.
//
// FlowRadar keeps {ips = pps} but makes each insertion constant-time via
// an IBLT; the price is a *decode cliff*: once the number of active flows
// exceeds the IBLT peeling threshold, the whole table becomes undecodable
// at once. InstaMeasure relaxes the rate instead; its WSAF degrades
// gracefully (eviction of mice) and elephants stay measurable at any flow
// count. This bench sweeps the flow count at fixed memory and plots both
// systems' ability to answer "what are the flows and their sizes".
#include "bench_common.h"

#include <cmath>

#include "analysis/ground_truth.h"
#include "baselines/flowradar.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Related work — FlowRadar decode cliff vs WSAF graceful degradation",
      "FlowRadar (NSDI'16) decodes exactly below the IBLT threshold and "
      "not at all above it; the in-DRAM WSAF keeps answering for elephants "
      "at any population");

  // Fixed memory: FlowRadar 2^16 cells (~1.3MB) vs an InstaMeasure with a
  // WSAF of 2^15 entries (~1.1MB logical) + 128KB sketch.
  constexpr std::size_t kCells = 1 << 16;

  analysis::Table table{{"flows", "IBLT load", "FlowRadar decode",
                         "FR flows recovered", "IM elephant err",
                         "IM elephants seen"}};
  bool cliff_seen = false, pre_cliff_exact = false, im_survives = true;

  for (const std::size_t n_flows :
       {20'000u, 40'000u, 52'000u, 60'000u, 120'000u, 250'000u}) {
    // Workload: n_flows mice + 20 fixed elephants of 5000 packets.
    trace::TraceConfig config;
    config.duration_s = 10.0;
    config.tiers = {{20, 5'000, 5'000}};
    config.mice = {n_flows, 1.05, 20};
    config.seed = seed;
    const auto trace = trace::generate(config);
    const analysis::GroundTruth truth{trace};

    baselines::FlowRadarConfig fr_config;
    fr_config.counting_cells = kCells;
    fr_config.expected_flows = 1 << 19;
    baselines::FlowRadar radar{fr_config};
    for (const auto& rec : trace.packets) radar.offer(rec.key.hash());
    const auto decode = radar.decode();

    core::EngineConfig im_config;
    im_config.regulator.l1_memory_bytes = 32 * 1024;
    im_config.wsaf.log2_entries = 15;
    core::InstaMeasure engine{im_config};
    for (const auto& rec : trace.packets) engine.process(rec);

    // Elephants: mean |err| and visibility through the WSAF.
    double err_sum = 0;
    std::size_t elephants = 0, visible = 0;
    for (const auto& [key, t] : truth.flows()) {
      if (t.packets < 4'000) continue;
      ++elephants;
      const auto est = engine.query(key);
      if (est.in_wsaf) ++visible;
      err_sum += std::abs(est.packets - static_cast<double>(t.packets)) /
                 static_cast<double>(t.packets);
    }
    const double im_err = elephants ? err_sum / static_cast<double>(elephants)
                                    : 0.0;
    const double load =
        static_cast<double>(truth.flow_count()) / static_cast<double>(kCells);

    table.add_row(
        {util::format_count(truth.flow_count()),
         analysis::cell("%.2f", load),
         decode.complete ? "complete (exact)" : "FAILED",
         util::format_count(decode.flows.size()),
         analysis::cell("%.2f%%", 100 * im_err),
         analysis::cell("%zu/%zu", visible, elephants)});

    if (load < 0.75 && decode.complete) pre_cliff_exact = true;
    if (load > 1.0 && !decode.complete) cliff_seen = true;
    if (visible != elephants || im_err > 0.10) im_survives = false;
  }
  table.print();

  bench::shape_check(pre_cliff_exact,
                     "FlowRadar decodes exactly below the IBLT threshold");
  bench::shape_check(cliff_seen,
                     "FlowRadar hits the decode cliff once flows exceed the "
                     "table (its scalability limit)");
  bench::shape_check(im_survives,
                     "InstaMeasure keeps every elephant measurable (<10% "
                     "err) at every population — graceful degradation");
  std::printf("\nencode-side: FlowRadar ips = pps by design; InstaMeasure "
              "regulates ips to ~1%% — the two opposite answers to the WSAF "
              "speed problem (paper §VI)\n");
  return 0;
}
