// Memory-model sensitivity: how robust is the "DRAM can host the WSAF"
// conclusion to the assumed DRAM access time?
//
// Figs 1/7 rest on the ratio between the per-packet time budget and the
// DRAM random-access latency. This bench sweeps DRAM latency (faster and
// slower than our 60 ns default), derives the regulation budget at several
// line rates, and marks which front-ends fit — showing the conclusion
// holds across the whole plausible DRAM range, not just at one number.
#include "bench_common.h"

#include "memmodel/memory_model.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  // Measured on the CAIDA-like trace by bench_fig07; fixed here so this
  // bench is a pure model sweep (override via flags if desired).
  const double fr_regulation = args.get_double("fr", 0.0117);
  const double rcc_regulation = args.get_double("rcc", 0.114);

  bench::print_header(
      "Sensitivity — DRAM latency vs WSAF feasibility",
      "the FlowRegulator-fits / RCC-does-not verdict holds across the "
      "plausible DRAM latency range and line rates");

  analysis::Table table{{"DRAM ns", "SRAM/DRAM", "rate", "budget",
                         "FR 1.17%", "RCC 11.4%"}};
  bool fr_fits_everywhere = true;
  bool rcc_fails_at_line_rate = false;

  for (const double dram_ns : {40.0, 60.0, 80.0, 100.0}) {
    memmodel::WsafBudget budget;
    budget.timing.dram_ns = dram_ns;
    for (const double gbps : {10.0, 40.0, 100.0}) {
      // Worst case: 64B frames (84B on the wire with preamble + IFG).
      const double pps = gbps * 1e9 / 8.0 / 84.0;
      const double margin =
          budget.max_regulation_rate(memmodel::MemoryKind::kDram, pps);
      const bool fr_ok = fr_regulation <= margin;
      const bool rcc_ok = rcc_regulation <= margin;
      table.add_row({analysis::cell("%.0f", dram_ns),
                     analysis::cell("%.0fx", budget.timing.sram_speedup()),
                     analysis::cell("%.0f GbE", gbps),
                     analysis::cell("%.2f%%", 100 * margin),
                     fr_ok ? "fits" : "FAILS", rcc_ok ? "fits" : "FAILS"});
      // 100GbE at worst-case frame size is the stress case the paper's
      // motivation quotes.
      if (gbps >= 100.0) {
        if (!fr_ok) fr_fits_everywhere = false;
        if (!rcc_ok) rcc_fails_at_line_rate = true;
      }
    }
  }
  table.print();

  std::printf("\n(regulation rates fixed at the bench_fig07 measurements: "
              "FR %.2f%%, RCC %.1f%%)\n",
              100 * fr_regulation, 100 * rcc_regulation);
  bench::shape_check(fr_fits_everywhere,
                     "FlowRegulator fits the in-DRAM budget at 100GbE for "
                     "every DRAM latency in [40, 100] ns");
  bench::shape_check(rcc_fails_at_line_rate,
                     "single-layer RCC fails the same budget — the paper's "
                     "motivating gap is latency-robust");
  return 0;
}
