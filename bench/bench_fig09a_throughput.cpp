// Fig 9(a): processing speed vs worker cores — the paper measures 18.9 /
// 25.5 / 36.2 / 46.3 Mpps for 1-4 Atom cores on the preloaded CAIDA trace.
//
// Reproduction: run the multi-core engine over a preloaded in-memory trace
// with 1..4 workers and report wall-clock Mpps. NOTE: absolute numbers and
// the scaling slope depend on the build host's physical core count; on a
// single-core host the workers timeslice and aggregate throughput cannot
// rise (the harness reports the host's parallelism so the result can be
// interpreted).
#include "bench_common.h"

#include <thread>

#include "runtime/multicore.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const auto max_workers =
      static_cast<unsigned>(args.get_int("max-workers", 4));

  bench::print_header(
      "Fig 9(a) — FlowRegulator processing speed vs cores",
      "18.9 / 25.5 / 36.2 / 46.3 Mpps for 1-4 Atom cores; throughput "
      "scales with core count");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);
  const unsigned host_cores = std::thread::hardware_concurrency();
  std::printf("host parallelism: %u hardware thread(s)%s\n", host_cores,
              host_cores < 2 ? "  [scaling cannot materialize here]" : "");

  // Both worker drain paths, A/B per worker count: "batch" is the
  // prefetch-pipelined process_batch() hot path (the default), "scalar" the
  // looped per-packet process() baseline. Same dispatch, same shards — the
  // Mpps delta is what the batching buys end to end.
  analysis::Table table{{"workers", "path", "wall (s)", "Mpps",
                         "producer stalls", "max queue depth"}};
  std::vector<double> mpps;       // batched path, per worker count
  std::vector<double> mpps_scalar;
  telemetry::Registry registry;
  for (unsigned w = 1; w <= max_workers; ++w) {
    for (const bool batched : {true, false}) {
      runtime::MultiCoreConfig config;
      config.workers = w;
      config.batched = batched;
      config.engine.regulator.l1_memory_bytes = 32 * 1024;
      config.engine.wsaf.log2_entries = 20;
      config.registry = &registry;
      runtime::MultiCoreEngine engine{config};
      const auto stats = engine.run(trace);
      (batched ? mpps : mpps_scalar).push_back(stats.mpps);
      std::size_t max_depth = 0;
      for (const auto d : stats.max_queue_depth) {
        max_depth = std::max(max_depth, d);
      }
      table.add_row({analysis::cell("%u", w), batched ? "batch" : "scalar",
                     analysis::cell("%.3f", stats.wall_seconds),
                     analysis::cell("%.2f", stats.mpps),
                     util::format_count(stats.producer_stalls),
                     util::format_count(max_depth)});
    }
  }
  table.print();

  // Single-worker speed also bounds the single-core claim: the paper's
  // 18.9 Mpps on a 2.4GHz Atom corresponds to ~127 cycles per packet.
  bench::shape_check(mpps[0] > 1.0,
                     "single-worker engine sustains multi-Mpps on a "
                     "preloaded trace (paper: 18.9 Mpps on Atom)");
  if (host_cores >= max_workers) {
    bench::shape_check(mpps.back() > mpps.front() * 1.3,
                       "throughput grows with workers (paper Fig 9a slope)");
  } else {
    std::printf(
        "SHAPE-CHECK SKIP: host has %u hardware thread(s) < %u workers; "
        "the Fig 9a scaling slope requires physical cores (see DESIGN.md "
        "substitutions)\n",
        host_cores, max_workers);
  }
  bench::print_metrics_json(registry);
  return 0;
}
