// Ablation study for the design choices DESIGN.md calls out:
//
//   A. Layer count — single-layer RCC vs the two-layer FlowRegulator at
//      equal total memory: regulation rate and per-flow accuracy.
//   B. Noise band width — how many L2 banks (noise_max) trades memory
//      against regulation and accuracy.
//   C. WSAF probe limit — probing work vs eviction pressure.
//   D. WSAF eviction policy — second-chance vs stalest vs reject-on-full,
//      measured by elephant survival under mice churn.
#include "bench_common.h"

#include <array>
#include <unordered_map>
#include <utility>

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "core/instameasure.h"
#include "core/multilayer_regulator.h"
#include "runtime/multicore.h"
#include "sketch/rcc.h"

using namespace instameasure;

namespace {

struct AccuracyResult {
  double regulation = 0;
  double err_10k = 0;
  std::uint64_t wsaf_inserts = 0;
};

AccuracyResult run_engine(const trace::Trace& trace,
                          const analysis::GroundTruth& truth,
                          core::EngineConfig config) {
  core::InstaMeasure engine{config};
  for (const auto& rec : trace.packets) engine.process(rec);
  const auto errors = analysis::banded_errors(
      truth,
      [&](const netio::FlowKey& key) { return engine.query(key).packets; },
      {10'000}, false);
  return {engine.regulator().regulation_rate(),
          errors[0].mean_abs_rel_error, engine.wsaf().stats().inserts};
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header("Ablation — layer count, noise band, probe limit, "
                      "eviction policy",
                      "design-choice sensitivity (not a paper figure)");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  // ---- A: layers at equal total memory (128KB) ----
  std::printf("\n--- A: one layer (RCC) vs two layers (FlowRegulator), "
              "128KB total ---\n");
  {
    sketch::RccConfig rcc_config;
    rcc_config.memory_bytes = 128 * 1024;
    sketch::RccSketch rcc{rcc_config};
    // Standalone RCC as front-end: estimate = sum of units + residual.
    std::unordered_map<std::uint64_t, double> rcc_counts;
    for (const auto& rec : trace.packets) {
      const auto hash = rec.key.hash();
      if (const auto noise = rcc.encode(rcc.layout_of(hash))) {
        rcc_counts[hash] += rcc.unit(*noise);
      }
    }
    const auto rcc_errors = analysis::banded_errors(
        truth,
        [&](const netio::FlowKey& key) {
          const auto hash = key.hash();
          const auto it = rcc_counts.find(hash);
          const double base = it == rcc_counts.end() ? 0.0 : it->second;
          return base + rcc.residual_estimate(rcc.layout_of(hash));
        },
        {10'000}, false);

    core::EngineConfig fr_config;
    fr_config.regulator.l1_memory_bytes = 32 * 1024;
    fr_config.wsaf.log2_entries = 20;
    const auto fr = run_engine(trace, truth, fr_config);

    analysis::Table table{{"scheme", "regulation", "err 10K+"}};
    table.add_row({"RCC 1-layer (128KB)",
                   analysis::cell("%.2f%%", 100 * rcc.regulation_rate()),
                   analysis::cell("%.2f%%",
                                  100 * rcc_errors[0].mean_abs_rel_error)});
    table.add_row({"FR 2-layer (4x32KB)",
                   analysis::cell("%.2f%%", 100 * fr.regulation),
                   analysis::cell("%.2f%%", 100 * fr.err_10k)});
    table.print();
    bench::shape_check(fr.regulation < rcc.regulation_rate() / 5,
                       "two layers buy >5x regulation at equal memory");
    bench::shape_check(fr.err_10k < rcc_errors[0].mean_abs_rel_error + 0.02,
                       "accuracy cost of the second layer is small");
  }

  // ---- A2: layer count via the N-layer generalization ----
  std::printf("\n--- A2: layer count (MultiLayerRegulator, single flow) ---\n");
  {
    analysis::Table table{{"layers", "banks", "total mem", "regulation",
                           "retention (pkts/event)"}};
    for (const unsigned layers : {1u, 2u, 3u}) {
      core::MultiLayerConfig config;
      config.layer_memory_bytes = 32 * 1024;
      config.layers = layers;
      core::MultiLayerRegulator reg{config};
      for (int i = 0; i < 2'000'000; ++i) (void)reg.offer(0xAB12, 500);
      table.add_row({analysis::cell("%u", layers),
                     analysis::cell("%zu", config.total_banks()),
                     util::format_bytes(config.total_memory_bytes()),
                     analysis::cell("%.4f%%", 100 * reg.regulation_rate()),
                     analysis::cell("%.0f", reg.mean_packets_per_event())});
    }
    table.print();
    std::printf("each layer multiplies retention (and divides WSAF ips) by "
                "~9x for 8-bit vectors — the paper's 'or even the number of "
                "layers' tuning knob\n");
  }

  // ---- B: noise band width ----
  std::printf("\n--- B: noise_max (number of L2 banks) ---\n");
  {
    analysis::Table table{{"noise_max", "banks", "total mem", "regulation",
                           "err 10K+"}};
    for (const unsigned noise_max : {1u, 2u, 3u, 4u}) {
      core::EngineConfig config;
      config.regulator.l1_memory_bytes = 32 * 1024;
      config.regulator.noise_max = noise_max;
      config.wsaf.log2_entries = 20;
      const auto r = run_engine(trace, truth, config);
      table.add_row(
          {analysis::cell("%u", noise_max),
           analysis::cell("%u", config.regulator.banks()),
           util::format_bytes(config.regulator.total_memory_bytes()),
           analysis::cell("%.2f%%", 100 * r.regulation),
           analysis::cell("%.2f%%", 100 * r.err_10k)});
    }
    table.print();
  }

  // ---- C: WSAF probe limit ----
  std::printf("\n--- C: WSAF probe limit (1024-entry table to force "
              "pressure) ---\n");
  {
    analysis::Table table{{"probe limit", "inserts", "evictions",
                           "avg probes/accumulate", "load factor"}};
    for (const unsigned limit : {4u, 8u, 16u, 32u}) {
      core::EngineConfig config;
      config.regulator.l1_memory_bytes = 32 * 1024;
      config.wsaf.log2_entries = 10;  // small on purpose
      config.wsaf.probe_limit = limit;
      core::InstaMeasure engine{config};
      for (const auto& rec : trace.packets) engine.process(rec);
      const auto& stats = engine.wsaf().stats();
      table.add_row(
          {analysis::cell("%u", limit), util::format_count(stats.inserts),
           util::format_count(stats.evictions),
           analysis::cell("%.1f", static_cast<double>(stats.probes) /
                                      std::max<std::uint64_t>(
                                          1, stats.accumulates)),
           analysis::cell("%.1f%%", 100 * engine.wsaf().load_factor())});
    }
    table.print();
  }

  // ---- D: eviction policy ----
  std::printf("\n--- D: eviction policy, elephant survival under churn ---\n");
  {
    analysis::Table table{{"policy", "err 10K+", "evictions", "rejected"}};
    const std::pair<core::EvictionPolicy, const char*> policies[] = {
        {core::EvictionPolicy::kSecondChance, "second-chance"},
        {core::EvictionPolicy::kStalest, "stalest"},
        {core::EvictionPolicy::kNone, "reject (NetFlow-style)"},
    };
    double second_chance_err = 0, reject_err = 0;
    for (const auto& [policy, name] : policies) {
      core::EngineConfig config;
      config.regulator.l1_memory_bytes = 32 * 1024;
      config.wsaf.log2_entries = 9;  // tiny: heavy pressure
      config.wsaf.eviction = policy;
      core::InstaMeasure engine{config};
      for (const auto& rec : trace.packets) engine.process(rec);
      const auto errors = analysis::banded_errors(
          truth,
          [&](const netio::FlowKey& key) { return engine.query(key).packets; },
          {10'000}, false);
      if (policy == core::EvictionPolicy::kSecondChance) {
        second_chance_err = errors[0].mean_abs_rel_error;
      }
      if (policy == core::EvictionPolicy::kNone) {
        reject_err = errors[0].mean_abs_rel_error;
      }
      table.add_row({name,
                     analysis::cell("%.2f%%", 100 * errors[0].mean_abs_rel_error),
                     util::format_count(engine.wsaf().stats().evictions),
                     util::format_count(engine.wsaf().stats().rejected)});
    }
    table.print();
    bench::shape_check(second_chance_err <= reject_err + 0.01,
                       "second-chance at least matches reject-on-full under "
                       "table pressure");
  }

  // ---- E: multi-core dispatch policy load balance ----
  std::printf("\n--- E: dispatch policy, per-worker packet share (4 "
              "workers) ---\n");
  {
    analysis::Table table{
        {"policy", "w0", "w1", "w2", "w3", "max/mean pkts / flows"}};
    const std::pair<runtime::DispatchPolicy, const char*> policies[] = {
        {runtime::DispatchPolicy::kPopcount, "popcount(srcIP) (paper Fig 5)"},
        {runtime::DispatchPolicy::kFlowHash, "flow-hash"}};
    for (const auto& [policy, name] : policies) {
      runtime::MultiCoreConfig config;
      config.workers = 4;
      config.dispatch = policy;
      config.engine.regulator.l1_memory_bytes = 32 * 1024;
      config.engine.wsaf.log2_entries = 16;
      runtime::MultiCoreEngine engine{config};
      std::array<std::uint64_t, 4> pkt_load{};
      std::array<std::uint64_t, 4> flow_load{};
      std::unordered_map<std::uint64_t, unsigned> flow_worker;
      for (const auto& rec : trace.packets) {
        const auto w = engine.worker_of(rec.key);
        ++pkt_load[w];
        flow_worker.try_emplace(rec.key.hash(), w);
      }
      for (const auto& [h, w] : flow_worker) ++flow_load[w];
      const double pkt_mean = static_cast<double>(trace.packets.size()) / 4.0;
      const double flow_mean = static_cast<double>(flow_worker.size()) / 4.0;
      std::vector<std::string> row{name};
      for (const auto l : pkt_load) {
        row.push_back(analysis::cell(
            "%.1f%%", 100.0 * static_cast<double>(l) /
                          static_cast<double>(trace.packets.size())));
      }
      row.push_back(analysis::cell(
          "%.2f / %.2f",
          static_cast<double>(
              *std::max_element(pkt_load.begin(), pkt_load.end())) /
              pkt_mean,
          static_cast<double>(
              *std::max_element(flow_load.begin(), flow_load.end())) /
              flow_mean));
      table.add_row(std::move(row));
    }
    table.print();
    std::printf(
        "flow-level balance: hash is near-uniform, popcount is binomially "
        "skewed. Packet-level balance is dominated by elephant placement "
        "luck under ANY flow-affine dispatch — the real limit of Fig 5's "
        "design.\n");
  }
  return 0;
}
