// Fig 12: monitoring in the wild — 113 hours at the campus gateway with a
// single Atom core, 128KB sketch, 33MB WSAF. The traffic curve is diurnal;
// the worker's load follows it but never exceeds ~40%, and the ingress
// queue never grows noticeably.
//
// Reproduction: a compressed campus-like trace (diurnal modulation) is
// replayed through the single-worker runtime *paced at trace time* so that
// worker utilization is meaningful, reporting the per-interval traffic,
// a modeled CPU load, and queue depth.
#include "bench_common.h"

#include "core/instameasure.h"
#include "runtime/multicore.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.1);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  bench::print_header(
      "Fig 12 — monitoring in the wild: traffic curve, CPU load, queue",
      "traffic is diurnal; single-core load tracks it but stays <40%; the "
      "ingress queue does not grow");

  const auto trace =
      trace::generate(trace::campus_config(scale, 240.0, seed));
  bench::print_trace_summary(trace);

  // Measure the engine's raw per-packet cost once (throughput mode)...
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{config};
  bench::WallTimer timer;
  for (const auto& rec : trace.packets) engine.process(rec);
  const double ns_per_packet =
      timer.seconds() * 1e9 / static_cast<double>(trace.packets.size());
  std::printf("engine cost: %.1f ns/packet (%.2f Mpps single worker)\n",
              ns_per_packet, 1e3 / ns_per_packet);

  // ...then model per-interval CPU load as (pps x cost), the quantity the
  // paper's Fig 12(c) plots. A 1 Gbps campus uplink peaks ~150 kpps.
  const auto timeline = trace::pps_timeline(trace, trace.duration_s() / 12.0);
  analysis::Table table{{"interval", "pps", "modeled CPU load", "wsaf occupancy"}};
  double max_load = 0, min_load = 1;
  for (std::size_t i = 0; i < timeline.size(); ++i) {
    const double load = timeline[i] * ns_per_packet / 1e9;
    max_load = std::max(max_load, load);
    min_load = std::min(min_load, load);
    table.add_row({analysis::cell("%zu", i), util::format_rate(timeline[i]),
                   analysis::cell("%.2f%%", 100 * load), ""});
  }
  table.print();

  std::printf("\nWSAF: occupancy %s of %s entries (%.1f%%), %s logical\n",
              util::format_count(engine.wsaf().occupancy()).c_str(),
              util::format_count(engine.wsaf().config().entries()).c_str(),
              100 * engine.wsaf().load_factor(),
              util::format_bytes(engine.wsaf().logical_memory_bytes()).c_str());
  std::printf("regulation rate over full run: %.2f%%\n",
              100 * engine.regulator().regulation_rate());

  // Queue behaviour under real-time arrival: replay a slice paced at the
  // campus peak rate (~150 kpps on the 1 Gbps uplink) and report the
  // queue's high-water mark — the Fig 12 "queue did not grow" claim.
  runtime::MultiCoreConfig mc;
  mc.workers = 1;
  mc.engine = config;
  runtime::MultiCoreEngine mc_engine{mc};
  trace::Trace slice;
  slice.name = trace.name + "-paced-slice";
  slice.packets.assign(
      trace.packets.begin(),
      trace.packets.begin() +
          std::min<std::size_t>(300'000, trace.packets.size()));
  const double peak_pps = 150'000;
  const auto stats = mc_engine.run(slice, peak_pps);
  std::printf("paced replay at %s: queue high-water mark %s of %s slots, "
              "%s producer stalls\n",
              util::format_rate(peak_pps).c_str(),
              util::format_count(stats.max_queue_depth[0]).c_str(),
              util::format_count(mc.queue_capacity).c_str(),
              util::format_count(stats.producer_stalls).c_str());

  bench::shape_check(max_load > 2.0 * std::max(min_load, 1e-9),
                     "CPU load follows the diurnal traffic curve");
  bench::shape_check(max_load < 0.40,
                     "single-core load stays under 40% at campus rates");
  bench::shape_check(stats.max_queue_depth[0] < mc.queue_capacity / 4 &&
                         stats.producer_stalls == 0,
                     "ingress queue does not grow under real-time arrival");
  return 0;
}
