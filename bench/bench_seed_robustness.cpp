// Robustness sweep: the headline quantities re-measured across independent
// seeds. A reproduction whose numbers hold for exactly one RNG stream is
// not a reproduction; this bench reports mean +- stddev of the regulation
// rate and the 10K+ packet-accuracy band over several trace seeds.
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "core/instameasure.h"
#include "util/stats.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seeds = static_cast<int>(args.get_int("seeds", 5));

  bench::print_header(
      "Seed robustness — regulation rate and accuracy across RNG streams",
      "the ~1% regulation and per-band accuracy are properties of the "
      "design, not of a lucky seed");

  util::StreamingStats regulation, err_10k, occupancy;
  analysis::Table table{{"seed", "regulation", "err 10K+", "wsaf flows"}};
  for (int s = 0; s < seeds; ++s) {
    const auto seed = 1000 + static_cast<std::uint64_t>(s) * 7919;
    const auto trace = trace::generate(trace::caida_like_config(scale, seed));
    const analysis::GroundTruth truth{trace};

    core::EngineConfig config;
    config.regulator.l1_memory_bytes = 32 * 1024;
    config.regulator.seed = seed ^ 0xABCD;
    config.wsaf.log2_entries = 20;
    config.seed = seed ^ 0x1234;
    core::InstaMeasure engine{config};
    for (const auto& rec : trace.packets) engine.process(rec);

    const auto errors = analysis::banded_errors(
        truth,
        [&](const netio::FlowKey& key) { return engine.query(key).packets; },
        {10'000}, false);

    regulation.add(engine.regulator().regulation_rate());
    err_10k.add(errors[0].mean_abs_rel_error);
    occupancy.add(static_cast<double>(engine.wsaf().occupancy()));
    table.add_row({analysis::cell("%llu", static_cast<unsigned long long>(seed)),
                   analysis::cell("%.3f%%",
                                  100 * engine.regulator().regulation_rate()),
                   analysis::cell("%.2f%%", 100 * errors[0].mean_abs_rel_error),
                   util::format_count(engine.wsaf().occupancy())});
  }
  table.print();

  std::printf("\nregulation: %.3f%% +- %.3f%%   err 10K+: %.2f%% +- %.2f%%\n",
              100 * regulation.mean(), 100 * regulation.stddev(),
              100 * err_10k.mean(), 100 * err_10k.stddev());

  bench::shape_check(regulation.mean() > 0.005 && regulation.mean() < 0.03,
                     "mean regulation in the ~1% band across seeds");
  bench::shape_check(regulation.stddev() < regulation.mean() * 0.2,
                     "regulation varies <20% across seeds");
  bench::shape_check(err_10k.mean() < 0.05,
                     "10K+ accuracy stays within a few % across seeds");
  return 0;
}
