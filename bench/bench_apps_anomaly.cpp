// Application-layer bench: the statistics the paper lists as WSAF
// consumers (§II) — super-spreader detection, flow-size entropy, and the
// flow-size distribution — running on top of the measurement plane.
//
// Not a numbered paper figure; it demonstrates that the WSAF's contents
// (elephants + mice samples) are sufficient for the downstream detectors
// the paper motivates.
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "apps/superspreader.h"
#include "apps/traffic_stats.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Applications — super-spreader, entropy, flow-size distribution",
      "the WSAF serves the anomaly detectors the paper motivates (§II)");

  auto trace = trace::generate(trace::caida_like_config(scale, seed));
  // Plant two scanners of different fan-out.
  trace::ScanSpec big_scan;
  big_scan.n_destinations = 8'000;
  big_scan.start_s = 10.0;
  big_scan.duration_s = 20.0;
  big_scan.seed = seed + 1;
  trace::ScanSpec small_scan;
  small_scan.n_destinations = 1'500;
  small_scan.start_s = 30.0;
  small_scan.duration_s = 10.0;
  small_scan.seed = seed + 2;
  const auto big_src = inject_scan(trace, big_scan);
  const auto small_src = inject_scan(trace, small_scan);
  bench::print_trace_summary(trace);

  // Measurement plane + applications in one pass.
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 32 * 1024;
  config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{config};
  apps::SuperSpreaderConfig ss_config;
  ss_config.expected_contacts = 1 << 22;
  apps::SuperSpreaderDetector spreaders{ss_config};
  for (const auto& rec : trace.packets) {
    engine.process(rec);
    spreaders.offer(rec);
  }

  // --- super-spreaders ---
  std::printf("\n--- super-spreaders (planted: %s with 8000 dsts, %s with "
              "1500 dsts) ---\n",
              netio::ipv4_to_string(big_src).c_str(),
              netio::ipv4_to_string(small_src).c_str());
  analysis::Table ss_table{{"rank", "source", "est distinct dsts"}};
  const auto top = spreaders.top(4);
  for (std::size_t i = 0; i < top.size(); ++i) {
    ss_table.add_row({analysis::cell("%zu", i + 1),
                      netio::ipv4_to_string(top[i].src_ip),
                      analysis::cell("%.0f", top[i].distinct_dsts)});
  }
  ss_table.print();
  bench::shape_check(!top.empty() && top[0].src_ip == big_src,
                     "largest scanner ranked first");
  bench::shape_check(top.size() >= 2 && top[1].src_ip == small_src,
                     "second scanner ranked second");
  bench::shape_check(
      !top.empty() && std::abs(top[0].distinct_dsts / 8000.0 - 1.0) < 0.15,
      "fan-out estimate within HLL tolerance");

  // --- entropy ---
  const analysis::GroundTruth truth{trace};
  std::vector<double> truth_sizes;
  for (const auto& [key, t] : truth.flows()) {
    if (t.packets >= 150) truth_sizes.push_back(static_cast<double>(t.packets));
  }
  const double truth_h = apps::flow_size_entropy(truth_sizes);
  const double est_h = apps::wsaf_entropy(engine.wsaf());
  std::printf("\n--- flow-size entropy (measurable region, >=150 pkts) ---\n");
  std::printf("truth: %.3f bits   wsaf estimate: %.3f bits\n", truth_h, est_h);
  bench::shape_check(std::abs(est_h - truth_h) < 1.0,
                     "entropy estimate within 1 bit of truth");

  // --- flow-size distribution ---
  std::printf("\n--- flow-size distribution (WSAF region) ---\n");
  const std::vector<std::uint64_t> edges{200, 1'000, 10'000, 100'000};
  const auto fsd = apps::flow_size_distribution(engine.wsaf(), edges);
  analysis::Table fsd_table{{"bucket", "wsaf flows", "truth flows"}};
  bool fsd_ok = true;
  for (std::size_t i = 0; i < fsd.size(); ++i) {
    const std::uint64_t lo = edges[i];
    const std::uint64_t hi =
        i + 1 < edges.size() ? edges[i + 1] : ~std::uint64_t{0};
    std::uint64_t truth_flows = 0;
    for (const auto& [key, t] : truth.flows()) {
      if (t.packets >= lo && t.packets < hi) ++truth_flows;
    }
    fsd_table.add_row({analysis::cell("[%llu, %s)",
                                      static_cast<unsigned long long>(lo),
                                      i + 1 < edges.size()
                                          ? std::to_string(edges[i + 1]).c_str()
                                          : "inf"),
                       util::format_count(fsd[i].flows),
                       util::format_count(truth_flows)});
    if (lo >= 1'000 && truth_flows > 0) {
      const double ratio =
          static_cast<double>(fsd[i].flows) / static_cast<double>(truth_flows);
      if (ratio < 0.7 || ratio > 1.4) fsd_ok = false;
    }
  }
  fsd_table.print();
  bench::shape_check(fsd_ok,
                     "elephant-region FSD within ~30% of truth per bucket");
  return 0;
}
