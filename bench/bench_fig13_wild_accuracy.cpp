// Fig 13: estimation accuracy of the long-running real-world deployment
// (12MB sketch): per-band standard errors of 0.54%/1.61%/3.46% for
// 1000K+/100K+/10K+ packet flows and 0.63%/1.74%/3.65% for
// 1GB+/100MB+/10MB+ byte flows — matching the CAIDA lab numbers.
//
// Reproduction: campus-like trace, paper-scale sketch, per-band mean
// absolute error and standard error of the relative error for packets and
// bytes.
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  bench::print_header(
      "Fig 13 — real-world (campus) estimation accuracy",
      "std err: packets 0.54%/1.61%/3.46% (1000K+/100K+/10K+), bytes "
      "0.63%/1.74%/3.65% (1GB+/100MB+/10MB+); every point hugs y=x");

  const auto trace =
      trace::generate(trace::campus_config(scale, 240.0, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  core::EngineConfig config;
  // The deployment used 128KB; Fig 13's caption quotes the 12MB variant.
  config.regulator.l1_memory_bytes =
      static_cast<std::size_t>(args.get_int("l1-kb", 3072)) * 1024;
  config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{config};
  for (const auto& rec : trace.packets) engine.process(rec);

  const auto pkt_errors = analysis::banded_errors(
      truth,
      [&](const netio::FlowKey& key) { return engine.query(key).packets; },
      {10'000, 100'000, 1'000'000}, false);
  const auto byte_errors = analysis::banded_errors(
      truth,
      [&](const netio::FlowKey& key) { return engine.query(key).bytes; },
      {10'000'000, 100'000'000, 1'000'000'000}, true);

  analysis::Table table{{"metric", "band", "flows", "mean |err|", "std err",
                         "bias"}};
  const char* pkt_names[] = {"10K+", "100K+", "1000K+"};
  const char* byte_names[] = {"10MB+", "100MB+", "1GB+"};
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({"packets", pkt_names[i],
                   util::format_count(pkt_errors[i].flows),
                   analysis::cell("%.2f%%", 100 * pkt_errors[i].mean_abs_rel_error),
                   analysis::cell("%.2f%%", 100 * pkt_errors[i].std_error),
                   analysis::cell("%+.2f%%", 100 * pkt_errors[i].mean_rel_bias)});
  }
  for (std::size_t i = 0; i < 3; ++i) {
    table.add_row({"bytes", byte_names[i],
                   util::format_count(byte_errors[i].flows),
                   analysis::cell("%.2f%%", 100 * byte_errors[i].mean_abs_rel_error),
                   analysis::cell("%.2f%%", 100 * byte_errors[i].std_error),
                   analysis::cell("%+.2f%%", 100 * byte_errors[i].mean_rel_bias)});
  }
  table.print();

  const auto& big_pkt = pkt_errors[2].flows ? pkt_errors[2] : pkt_errors[1];
  const auto& big_byte = byte_errors[2].flows ? byte_errors[2] : byte_errors[1];
  bench::shape_check(big_pkt.std_error < 0.04,
                     "largest packet band std err under ~4% (paper: 0.54%)");
  bench::shape_check(big_byte.std_error < 0.04,
                     "largest byte band std err under ~4% (paper: 0.63%)");
  bench::shape_check(pkt_errors[0].mean_abs_rel_error >
                         big_pkt.mean_abs_rel_error,
                     "error shrinks with flow size (the y=x funnel)");
  return 0;
}
