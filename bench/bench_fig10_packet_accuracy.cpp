// Fig 10: packet-counting accuracy vs sketch memory, and packet top-K
// recall.
//
// (a) Average relative error of per-flow packet counts after the full
//     trace, for L1 memory 32KB..512KB (total 128KB..2048KB), in the
//     paper's flow-size bands 10K+ / 100K+ / 1000K+ packets: error falls
//     with memory and with flow size (paper: 0.19%..3.48%).
// (b) Top-K recall (packet ranking) with a 10MB counter: mostly >95%.
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Fig 10 — packet counter accuracy & packet top-K recall",
      "(a) avg error falls with memory: 128KB -> 0.56%/1.54%/3.48% for "
      "1000K+/100K+/10K+ flows, 2048KB -> 0.19%/0.58%/1.76%; (b) top-K "
      "recall mostly >95%");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};
  std::printf("flows: %s\n", util::format_count(truth.flow_count()).c_str());

  const std::vector<std::uint64_t> bands{10'000, 100'000, 1'000'000};

  // ---- (a) memory sweep ----
  analysis::Table table{{"total sketch mem", "err 10K+ (n)", "err 100K+ (n)",
                         "err 1000K+ (n)", "regulation"}};
  double err_small_first = 0, err_small_last = 0;
  double err_big_last = 0, err_small_band_last = 0;
  const std::vector<std::size_t> l1_sizes{32, 64, 128, 256, 512};
  for (std::size_t i = 0; i < l1_sizes.size(); ++i) {
    core::EngineConfig config;
    config.regulator.l1_memory_bytes = l1_sizes[i] * 1024;
    config.wsaf.log2_entries = 20;
    core::InstaMeasure engine{config};
    for (const auto& rec : trace.packets) engine.process(rec);

    const auto errors = analysis::banded_errors(
        truth,
        [&](const netio::FlowKey& key) { return engine.query(key).packets; },
        bands, /*by_bytes=*/false);
    table.add_row(
        {util::format_bytes(config.regulator.total_memory_bytes()),
         analysis::cell("%.2f%% (%llu)", 100 * errors[0].mean_abs_rel_error,
                        static_cast<unsigned long long>(errors[0].flows)),
         analysis::cell("%.2f%% (%llu)", 100 * errors[1].mean_abs_rel_error,
                        static_cast<unsigned long long>(errors[1].flows)),
         analysis::cell("%.2f%% (%llu)", 100 * errors[2].mean_abs_rel_error,
                        static_cast<unsigned long long>(errors[2].flows)),
         analysis::cell("%.2f%%", 100 * engine.regulator().regulation_rate())});
    if (i == 0) err_small_first = errors[0].mean_abs_rel_error;
    if (i + 1 == l1_sizes.size()) {
      err_small_last = errors[0].mean_abs_rel_error;
      err_small_band_last = errors[0].mean_abs_rel_error;
      err_big_last = errors[2].flows ? errors[2].mean_abs_rel_error
                                     : errors[1].mean_abs_rel_error;
    }
  }
  table.print();

  bench::shape_check(err_small_last < err_small_first,
                     "more memory -> lower error (10K+ band)");
  bench::shape_check(err_big_last < err_small_band_last,
                     "bigger flows measure more accurately");
  bench::shape_check(err_big_last < 0.02,
                     "largest band error under ~2% (paper: 0.19-0.56%)");

  // ---- (b) top-K recall with a 10MB counter ----
  std::printf("\n--- Fig 10(b): packet top-K recall (10MB counter) ---\n");
  core::EngineConfig big_config;
  big_config.regulator.l1_memory_bytes = 2560 * 1024;  // 10MB total
  big_config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{big_config};
  for (const auto& rec : trace.packets) engine.process(rec);

  // Rank candidates by the full online estimate (WSAF record + regulator
  // residual): flows below the ~100-packet retention capacity never insert
  // into the WSAF, so deep-K boundaries are decided by residual decoding —
  // exactly what "online decoding" buys. Candidates are the trace's flows
  // (the paper evaluates against its recorded trace the same way).
  std::vector<std::pair<double, netio::FlowKey>> ranked;
  ranked.reserve(truth.flow_count());
  for (const auto& [key, t] : truth.flows()) {
    ranked.emplace_back(engine.query(key).packets, key);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  analysis::Table recall_table{{"K", "recall"}};
  double recall_10k = 0;
  // Paper evaluates up to top-1M on 78M flows; we scale K to the synthetic
  // population (top-K must rank above the 1-packet mice tie plateau).
  for (const std::size_t k : {100u, 1'000u, 10'000u}) {
    if (k > truth.flow_count() / 4) break;
    const auto truth_top = truth.top_k_keys(k, false);
    std::vector<netio::FlowKey> est_top;
    est_top.reserve(k);
    for (std::size_t i = 0; i < k && i < ranked.size(); ++i) {
      est_top.push_back(ranked[i].second);
    }
    const double recall = analysis::top_k_recall(truth_top, est_top);
    if (k == 10'000) recall_10k = recall;
    recall_table.add_row(
        {util::format_count(k), analysis::cell("%.1f%%", 100 * recall)});
  }
  recall_table.print();
  bench::shape_check(recall_10k > 0.80,
                     "deep top-K recall stays high (paper: mostly >95%; the "
                     "synthetic tail is tie-denser than CAIDA's)");
  return 0;
}
