// Fig 6: flow-size distributions of the two datasets (CAIDA one-hour merge
// and the 113-hour campus trace) — both Zipf-like: mice dominate the flow
// count while a heavy tail carries the volume.
//
// Reproduction: generate both synthetic substitutes and print their
// flow-size CCDF and volume concentration.
#include "bench_common.h"

#include <array>

#include "analysis/ground_truth.h"

using namespace instameasure;

namespace {

void describe(const trace::Trace& trace) {
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  constexpr std::array<std::uint64_t, 8> kBuckets{1,    10,     100,    1'000,
                                                  10'000, 100'000, 1'000'000,
                                                  10'000'000};
  std::array<std::uint64_t, kBuckets.size()> flows{};
  std::array<std::uint64_t, kBuckets.size()> volume{};
  std::uint64_t total_pkts = 0;
  for (const auto& [key, t] : truth.flows()) {
    total_pkts += t.packets;
    for (std::size_t b = 0; b < kBuckets.size(); ++b) {
      if (t.packets >= kBuckets[b]) {
        ++flows[b];
        volume[b] += t.packets;
      }
    }
  }

  analysis::Table table{{"flow size >=", "flows", "% of flows",
                         "% of packets carried"}};
  for (std::size_t b = 0; b < kBuckets.size(); ++b) {
    if (flows[b] == 0) continue;
    table.add_row(
        {util::format_count(kBuckets[b]), util::format_count(flows[b]),
         analysis::cell("%.3f%%", 100.0 * static_cast<double>(flows[b]) /
                                      static_cast<double>(truth.flow_count())),
         analysis::cell("%.1f%%", 100.0 * static_cast<double>(volume[b]) /
                                      static_cast<double>(total_pkts))});
  }
  table.print();

  const double mice_share =
      1.0 - static_cast<double>(flows[1]) /
                static_cast<double>(truth.flow_count());
  const double tail_volume =
      flows[3] ? static_cast<double>(volume[3]) /
                     static_cast<double>(total_pkts)
               : 0.0;
  bench::shape_check(mice_share > 0.7,
                     "mice (<10 pkts) dominate the flow count");
  bench::shape_check(tail_volume > 0.5,
                     "flows >=1000 pkts carry the majority of packets");
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header("Fig 6 — dataset flow-size distributions",
                      "both CAIDA and campus traffic are Zipf-like: mice "
                      "dominate counts, elephants dominate volume");

  std::printf("\n--- (a) CAIDA-like one-hour trace ---\n");
  describe(trace::generate(trace::caida_like_config(scale, seed)));

  std::printf("\n--- (b) campus-113h-like trace ---\n");
  describe(trace::generate(trace::campus_config(scale, 240.0, seed + 1)));
  return 0;
}
