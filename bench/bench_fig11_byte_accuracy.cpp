// Fig 11: byte-counting accuracy vs sketch memory, and byte top-K recall.
//
// The byte counter is saturation-sampled (est_pkt x triggering packet's
// length), yet tracks the packet counter's accuracy closely: 1GB+ flows
// measure within ~0.5%, and byte top-K recall stays >95% (paper Fig 11).
#include "bench_common.h"

#include "analysis/ground_truth.h"
#include "analysis/metrics.h"
#include "core/instameasure.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.2);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Fig 11 — byte counter accuracy & byte top-K recall",
      "(a) 128KB -> 0.54%/1.57%/3.47% for 1GB+/100MB+/10MB+ flows, "
      "2048KB -> 0.18%/0.61%/1.66%; (b) byte top-K recall mostly >95%");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  // Byte bands: the synthetic size model averages ~500-900B/pkt, so the
  // paper's 10MB+/100MB+/1GB+ byte bands line up with the packet bands.
  // 500MB stands in for the paper's 1GB+ band: at bench scale the largest
  // elephants carry ~0.8GB, so the top band would otherwise be empty.
  const std::vector<std::uint64_t> bands{10'000'000, 100'000'000,
                                         500'000'000};

  analysis::Table table{{"total sketch mem", "err 10MB+ (n)", "err 100MB+ (n)",
                         "err 500MB+ (n)"}};
  double err_small_first = 0, err_small_last = 0, err_big_last = 0;
  const std::vector<std::size_t> l1_sizes{32, 64, 128, 256, 512};
  for (std::size_t i = 0; i < l1_sizes.size(); ++i) {
    core::EngineConfig config;
    config.regulator.l1_memory_bytes = l1_sizes[i] * 1024;
    config.wsaf.log2_entries = 20;
    core::InstaMeasure engine{config};
    for (const auto& rec : trace.packets) engine.process(rec);

    const auto errors = analysis::banded_errors(
        truth,
        [&](const netio::FlowKey& key) { return engine.query(key).bytes; },
        bands, /*by_bytes=*/true);
    table.add_row(
        {util::format_bytes(config.regulator.total_memory_bytes()),
         analysis::cell("%.2f%% (%llu)", 100 * errors[0].mean_abs_rel_error,
                        static_cast<unsigned long long>(errors[0].flows)),
         analysis::cell("%.2f%% (%llu)", 100 * errors[1].mean_abs_rel_error,
                        static_cast<unsigned long long>(errors[1].flows)),
         analysis::cell("%.2f%% (%llu)", 100 * errors[2].mean_abs_rel_error,
                        static_cast<unsigned long long>(errors[2].flows))});
    if (i == 0) err_small_first = errors[0].mean_abs_rel_error;
    if (i + 1 == l1_sizes.size()) {
      err_small_last = errors[0].mean_abs_rel_error;
      err_big_last = errors[2].flows ? errors[2].mean_abs_rel_error
                                     : errors[1].mean_abs_rel_error;
    }
  }
  table.print();

  bench::shape_check(err_small_last < err_small_first,
                     "more memory -> lower byte error");
  bench::shape_check(err_big_last < 0.03,
                     "largest byte band error small (paper: 0.18-0.54%)");

  std::printf("\n--- Fig 11(b): byte top-K recall (10MB counter) ---\n");
  core::EngineConfig big_config;
  big_config.regulator.l1_memory_bytes = 2560 * 1024;
  big_config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{big_config};
  for (const auto& rec : trace.packets) engine.process(rec);

  // Rank by the full online byte estimate (WSAF + residual); see the
  // matching comment in bench_fig10.
  std::vector<std::pair<double, netio::FlowKey>> ranked;
  ranked.reserve(truth.flow_count());
  for (const auto& [key, t] : truth.flows()) {
    ranked.emplace_back(engine.query(key).bytes, key);
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  analysis::Table recall_table{{"K", "byte recall"}};
  double recall_10k = 0;
  for (const std::size_t k : {100u, 1'000u, 10'000u}) {
    if (k > truth.flow_count() / 4) break;
    const auto truth_top = truth.top_k_keys(k, /*by_bytes=*/true);
    std::vector<netio::FlowKey> est_top;
    est_top.reserve(k);
    for (std::size_t i = 0; i < k && i < ranked.size(); ++i) {
      est_top.push_back(ranked[i].second);
    }
    const double recall = analysis::top_k_recall(truth_top, est_top);
    if (k == 10'000) recall_10k = recall;
    recall_table.add_row(
        {util::format_count(k), analysis::cell("%.1f%%", 100 * recall)});
  }
  recall_table.print();
  bench::shape_check(recall_10k > 0.80, "deep byte top-K recall stays high");
  return 0;
}
