// Fig 1: single-layer RCC saturates at 12-19% of the packet arrival rate —
// far above the speed margin SRAM has over DRAM (5-10%) — so RCC alone
// cannot front an in-DRAM WSAF.
//
// Reproduction: replay a CAIDA-like trace through RCC with 8-bit and 16-bit
// virtual vectors, print the per-interval pps vs output-ips series the
// figure plots, and compare the overall regulation rates against the
// memory model's DRAM margin at line rate.
#include "bench_common.h"

#include "memmodel/memory_model.h"
#include "sketch/rcc.h"

using namespace instameasure;

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.05);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Fig 1 — RCC saturation rate vs packet arrival rate",
      "RCC output ips is 12-19% of pps (8-bit) / ~12% (16-bit), above the "
      "5-10% SRAM-over-DRAM speed margin");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);

  sketch::RccConfig config8;
  config8.memory_bytes = 128 * 1024;
  config8.vv_bits = 8;
  auto config16 = config8;
  config16.vv_bits = 16;
  sketch::RccSketch rcc8{config8};
  sketch::RccSketch rcc16{config16};

  // Per-interval series (the figure's x axis is the trace timeline).
  const double interval_s = trace.duration_s() / 10.0;
  const auto interval_ns = static_cast<std::uint64_t>(interval_s * 1e9);
  const auto t0 = trace.packets.front().timestamp_ns;

  analysis::Table table{{"t (s)", "pps", "rcc8 ips", "rcc8 %", "rcc16 ips",
                         "rcc16 %"}};
  std::uint64_t bucket_pkts = 0, bucket_sat8 = 0, bucket_sat16 = 0;
  std::uint64_t prev_sat8 = 0, prev_sat16 = 0;
  std::uint64_t bucket_end = t0 + interval_ns;
  double bucket_t = interval_s;

  auto flush_bucket = [&] {
    if (bucket_pkts == 0) return;
    const double pps = static_cast<double>(bucket_pkts) / interval_s;
    const double ips8 = static_cast<double>(bucket_sat8) / interval_s;
    const double ips16 = static_cast<double>(bucket_sat16) / interval_s;
    table.add_row({analysis::cell("%.0f", bucket_t),
                   util::format_rate(pps),
                   util::format_rate(ips8),
                   analysis::cell("%.1f%%", 100.0 * ips8 / pps),
                   util::format_rate(ips16),
                   analysis::cell("%.1f%%", 100.0 * ips16 / pps)});
    bucket_pkts = bucket_sat8 = bucket_sat16 = 0;
    bucket_t += interval_s;
  };

  for (const auto& rec : trace.packets) {
    while (rec.timestamp_ns >= bucket_end) {
      flush_bucket();
      bucket_end += interval_ns;
    }
    const auto hash = rec.key.hash();
    (void)rcc8.encode(rcc8.layout_of(hash));
    (void)rcc16.encode(rcc16.layout_of(hash));
    ++bucket_pkts;
    bucket_sat8 += rcc8.saturations() - prev_sat8;
    bucket_sat16 += rcc16.saturations() - prev_sat16;
    prev_sat8 = rcc8.saturations();
    prev_sat16 = rcc16.saturations();
  }
  flush_bucket();
  table.print();

  const double reg8 = rcc8.regulation_rate();
  const double reg16 = rcc16.regulation_rate();
  std::printf("\noverall regulation: rcc8 = %.2f%%, rcc16 = %.2f%%\n",
              100 * reg8, 100 * reg16);

  const memmodel::WsafBudget budget;
  const double line_rate_pps = 150e6;  // 100GbE of 64B frames
  const double dram_margin =
      budget.max_regulation_rate(memmodel::MemoryKind::kDram, line_rate_pps);
  std::printf("memmodel: in-DRAM WSAF margin at %s line rate = %.1f%%\n",
              util::format_rate(line_rate_pps).c_str(), 100 * dram_margin);

  bench::shape_check(reg8 > 0.08 && reg8 < 0.25,
                     "RCC 8-bit regulation in the 8-25% band (paper: 19%)");
  bench::shape_check(reg16 < reg8,
                     "larger vector regulates somewhat better (paper: 12%)");
  bench::shape_check(reg8 > dram_margin && reg16 > dram_margin,
                     "both exceed the DRAM margin -> RCC alone cannot front "
                     "an in-DRAM WSAF");
  return 0;
}
