// Micro-benchmarks (google-benchmark) for the fast-path primitives.
//
// These quantify the per-packet budget behind Fig 9(a): one FlowKey hash,
// one or two sketch word accesses, and a rare WSAF accumulate. The paper's
// 18.9 Mpps on a 2.4 GHz Atom is ~127 cycles/packet; the per-op costs here
// show where those cycles go on the build host.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "core/flow_regulator.h"
#include "core/instameasure.h"
#include "core/wsaf_table.h"
#include "runtime/spsc_queue.h"
#include "netio/codec.h"
#include "sketch/counter_tree.h"
#include "sketch/countmin.h"
#include "sketch/csm.h"
#include "sketch/rcc.h"
#include "telemetry/trace.h"
#include "util/rng.h"

using namespace instameasure;

namespace {

netio::FlowKey key_from(std::uint64_t v) {
  return netio::FlowKey{static_cast<std::uint32_t>(v),
                        static_cast<std::uint32_t>(v >> 32),
                        static_cast<std::uint16_t>(v >> 16),
                        static_cast<std::uint16_t>(v >> 48), 6};
}

void BM_FlowKeyHash(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(key_from(++i).hash());
  }
}
BENCHMARK(BM_FlowKeyHash);

void BM_VvLayout(benchmark::State& state) {
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::make_layout(++i, 1 << 14, 8));
  }
}
BENCHMARK(BM_VvLayout);

void BM_RccEncode(benchmark::State& state) {
  sketch::RccConfig config;
  config.memory_bytes = 128 * 1024;
  sketch::RccSketch rcc{config};
  util::SplitMix64 hashes{1};
  // 64 recurring flows: realistic word reuse.
  std::array<sketch::VvLayout, 64> layouts;
  for (auto& l : layouts) l = rcc.layout_of(hashes());
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rcc.encode(layouts[++i & 63]));
  }
}
BENCHMARK(BM_RccEncode);

void BM_FlowRegulatorOffer(benchmark::State& state) {
  core::FlowRegulatorConfig config;
  config.l1_memory_bytes = 32 * 1024;
  core::FlowRegulator fr{config};
  util::SplitMix64 hashes{2};
  std::array<std::uint64_t, 64> flows;
  for (auto& f : flows) f = hashes();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fr.offer(flows[++i & 63], 500));
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FlowRegulatorOffer);

core::WsafLayout bench_layout(const benchmark::State& state) {
  return state.range(0) == 0 ? core::WsafLayout::kScalarProbe
                             : core::WsafLayout::kBucketed;
}

// Hot-update path: 256 recurring flows in a 2^20 table — slot lines stay
// cached, so this row isolates the per-accumulate instruction cost of each
// layout (tag compare + mask walk vs. sequential slot probing).
void BM_WsafAccumulate(benchmark::State& state) {
  core::WsafConfig config;
  config.log2_entries = 20;
  config.layout = bench_layout(state);
  core::WsafTable table{config};
  util::SplitMix64 seeds{3};
  std::array<netio::FlowKey, 256> keys;
  std::array<std::uint64_t, 256> hashes;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = key_from(seeds());
    hashes[i] = keys[i].hash(config.seed);
  }
  std::size_t i = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    const auto j = ++i & 255;
    benchmark::DoNotOptimize(
        table.accumulate(keys[j], hashes[j], 100.0, 50'000.0, ++now));
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(to_string(config.layout));
}
BENCHMARK(BM_WsafAccumulate)->Arg(0)->Arg(1);

// DRAM-scale lookup/insert workload: a ~512 MB table (2^23 slots) filled to
// ~90% with distinct flows, then probed for those same flows in insertion
// order. Slot placement is hash-random, so every probe step in the scalar
// layout is a fresh cache-line miss, while the bucketed layout resolves the
// candidate set from one 64-byte metadata line — the ≥1.2× ratio
// scripts/check_wsaf_lookup.sh gates on. Built once per layout and reused
// across benchmark repetitions (the fill alone touches ~7.5M slots).
struct WsafLookupWorkload {
  std::unique_ptr<core::WsafTable> table;
  std::vector<netio::FlowKey> keys;
  std::vector<std::uint64_t> hashes;
  core::WsafLayout layout{};
};

WsafLookupWorkload& wsaf_lookup_workload(core::WsafLayout layout) {
  static WsafLookupWorkload w;
  if (w.table == nullptr || w.layout != layout) {
    w.table.reset();  // release the previous layout's 512 MB first
    core::WsafConfig config;
    config.log2_entries = 23;
    config.layout = layout;
    w.layout = layout;
    w.table = std::make_unique<core::WsafTable>(config);
    const std::size_t n = (std::size_t{1} << 23) / 10 * 9;
    w.keys.resize(n);
    w.hashes.resize(n);
    util::SplitMix64 seeds{7};
    std::uint64_t now = 0;
    for (std::size_t i = 0; i < n; ++i) {
      w.keys[i] = key_from(seeds());
      w.hashes[i] = w.keys[i].hash(config.seed);
      w.table->accumulate(w.keys[i], w.hashes[i], 1.0, 500.0, ++now);
    }
  }
  return w;
}

void BM_WsafLookup(benchmark::State& state) {
  auto& w = wsaf_lookup_workload(bench_layout(state));
  const std::size_t n = w.keys.size();
  std::size_t i = 0;
  for (auto _ : state) {
    if (++i == n) i = 0;
    benchmark::DoNotOptimize(w.table->lookup(w.keys[i], w.hashes[i]));
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(to_string(w.table->config().layout));
}
BENCHMARK(BM_WsafLookup)->Arg(0)->Arg(1);

// Insert-heavy churn on the same DRAM-scale table: distinct flows streaming
// into a 2^23-slot table, hitting the free-slot scan (bitmap in kBucketed,
// slot walk in kScalarProbe) rather than the update path.
void BM_WsafInsert(benchmark::State& state) {
  core::WsafConfig config;
  config.log2_entries = 23;
  config.layout = bench_layout(state);
  core::WsafTable table{config};
  util::SplitMix64 seeds{9};
  std::uint64_t now = 0;
  for (auto _ : state) {
    const auto key = key_from(seeds());
    benchmark::DoNotOptimize(
        table.accumulate(key, key.hash(config.seed), 1.0, 500.0, ++now));
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
  state.SetLabel(to_string(config.layout));
}
BENCHMARK(BM_WsafInsert)->Arg(0)->Arg(1);

// Bounded-pause contract for online resize: a ~512 MB table (2^23 slots,
// ~90% full) mid-migration to 2^24, with every accumulate individually
// timed. Each op may migrate at most kResizeMigrateSlotsPerOp old slots, so
// the worst per-packet pause must stay bounded no matter how large the
// table is. The iteration count is pinned so the migration cursor cannot
// drain the old region (100k ops x 64 slots < 2^23): every sample below is
// taken while the resize is genuinely in flight.
// scripts/check_resize_pause.sh gates on the exported counters:
//   max_op_slots <= budget_slots (hard), p99_pause_ns <= ceiling (env).
void BM_WsafResizePause(benchmark::State& state) {
  core::WsafConfig config;
  config.log2_entries = 23;
  config.layout = bench_layout(state);
  core::WsafTable table{config};
  const std::size_t n = (std::size_t{1} << 23) / 10 * 9;
  std::vector<netio::FlowKey> keys(n);
  std::vector<std::uint64_t> hashes(n);
  util::SplitMix64 seeds{11};
  std::uint64_t now = 0;
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = key_from(seeds());
    hashes[i] = keys[i].hash(config.seed);
    table.accumulate(keys[i], hashes[i], 1.0, 500.0, ++now);
  }
  if (!table.begin_resize(24)) {
    state.SkipWithError("begin_resize(24) refused");
    return;
  }
  std::vector<std::uint64_t> pause_ns;
  pause_ns.reserve(200'000);
  std::size_t i = 0;
  for (auto _ : state) {
    if (++i == n) i = 0;
    const auto t0 = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(
        table.accumulate(keys[i], hashes[i], 1.0, 500.0, ++now));
    const auto t1 = std::chrono::steady_clock::now();
    pause_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  if (!table.resizing()) {
    state.SkipWithError("migration drained before sampling finished");
    return;
  }
  std::sort(pause_ns.begin(), pause_ns.end());
  const auto rs = table.resize_stats();
  state.counters["p99_pause_ns"] = static_cast<double>(
      pause_ns[pause_ns.size() - 1 - pause_ns.size() / 100]);
  state.counters["max_pause_ns"] = static_cast<double>(pause_ns.back());
  state.counters["max_op_slots"] = static_cast<double>(rs.max_op_slots);
  state.counters["budget_slots"] =
      static_cast<double>(core::WsafTable::kResizeMigrateSlotsPerOp);
  state.counters["migrated"] = static_cast<double>(rs.entries_migrated);
  state.SetLabel(to_string(config.layout));
}
BENCHMARK(BM_WsafResizePause)->Arg(0)->Arg(1)->Iterations(100'000);

// -------------------------------------------------------- engine fast path
//
// The engine benchmarks share one DRAM-resident workload: a 512 MB L1
// sketch hit by 2^23 distinct flows in random order, so each packet's
// sketch word (and its last_len sample) is a likely LLC miss — the regime
// the paper's in-DRAM design targets and the one where the batched
// prefetch pipeline earns its keep. The sketch is deliberately sized far
// past server LLCs (build hosts report up to ~260 MB of L3): a cache-hot
// microloop would hide the entire memory stall the batch path exists to
// overlap. All engine variants use the same workload so their Mpps
// counters stay directly comparable.

constexpr std::size_t kEnginePoolSize = 1 << 23;
constexpr std::size_t kEnginePoolMask = kEnginePoolSize - 1;

core::EngineConfig engine_bench_config() {
  core::EngineConfig config;
  config.regulator.l1_memory_bytes = 512 * 1024 * 1024;
  config.wsaf.log2_entries = 20;
  return config;
}

std::vector<netio::PacketRecord> engine_bench_packets() {
  util::SplitMix64 seeds{4};
  std::vector<netio::PacketRecord> packets(kEnginePoolSize);
  for (auto& p : packets) {
    p.key = key_from(seeds());
    p.wire_len = 500;
  }
  return packets;
}

void BM_EngineProcess(benchmark::State& state) {
  core::InstaMeasure engine{engine_bench_config()};
  auto packets = engine_bench_packets();
  std::size_t i = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    auto& p = packets[++i & kEnginePoolMask];
    p.timestamp_ns = ++now;
    engine.process(p);
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineProcess);

// The batched pipeline over the same workload: one iteration = one batch
// of Arg(0) packets (hash precompute, distance-K regulator prefetch,
// deferred WSAF drain). Compare the Mpps counter against BM_EngineProcess;
// the acceptance floor for batch=32 is 1.3x (scripts/check_batch_speedup.sh
// gates CI at batch >= 0.95x scalar as a regression tripwire).
void BM_EngineProcessBatch(benchmark::State& state) {
  core::InstaMeasure engine{engine_bench_config()};
  auto packets = engine_bench_packets();
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::size_t off = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    const std::span<netio::PacketRecord> slice{&packets[off], batch};
    for (auto& p : slice) p.timestamp_ns = ++now;
    engine.process_batch(slice);
    off = (off + batch) & kEnginePoolMask;
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * batch) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineProcessBatch)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

// The batched pipeline (batch = 32) with the live query plane publishing
// at its default auto cadence — the full data-plane cost of keeping the
// WSAF queryable while it is written. The acceptance budget is <2% below
// BM_EngineProcessBatch/32 (scripts/check_query_overhead.sh gates CI at
// published >= 0.98x unpublished).
void BM_EngineProcessBatchPublished(benchmark::State& state) {
  auto config = engine_bench_config();
  config.publish_views = true;  // cadence: auto = max(2^16, slots * 8)
  core::InstaMeasure engine{config};
  auto packets = engine_bench_packets();
  constexpr std::size_t kBatch = 32;
  std::size_t off = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    const std::span<netio::PacketRecord> slice{&packets[off], kBatch};
    for (auto& p : slice) p.timestamp_ns = ++now;
    engine.process_batch(slice);
    off = (off + kBatch) & kEnginePoolMask;
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBatch) / 1e6,
      benchmark::Counter::kIsRate);
  state.counters["views"] = benchmark::Counter(
      static_cast<double>(engine.view_publisher()->publishes()));
}
BENCHMARK(BM_EngineProcessBatchPublished);

// The batched pipeline (batch = 32) with the live accuracy-audit plane on
// at its default 1/256 sampling — per packet that is one extra key hash +
// mask reject, plus shadow accounting on the sampled slice. The acceptance
// budget is <3% below BM_EngineProcessBatch/32
// (scripts/check_audit_overhead.sh gates CI at audited >= 0.97x plain).
void BM_EngineProcessBatchAudited(benchmark::State& state) {
  auto config = engine_bench_config();
  config.enable_audit = true;
  core::InstaMeasure engine{config};
  auto packets = engine_bench_packets();
  constexpr std::size_t kBatch = 32;
  std::size_t off = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    const std::span<netio::PacketRecord> slice{&packets[off], kBatch};
    for (auto& p : slice) p.timestamp_ns = ++now;
    engine.process_batch(slice);
    off = (off + kBatch) & kEnginePoolMask;
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kBatch) / 1e6,
      benchmark::Counter::kIsRate);
  if (const auto* auditor = engine.auditor()) {
    state.counters["shadow_flows"] = benchmark::Counter(
        static_cast<double>(auditor->shadow_flows()));
  }
}
BENCHMARK(BM_EngineProcessBatchAudited);

// Same fast path with every metric exported to a registry and detection
// enabled — the full observability cost. The delta vs BM_EngineProcess is
// what a scraped deployment pays per packet (<3% is the budget).
void BM_EngineProcessWithRegistry(benchmark::State& state) {
  telemetry::Registry registry;
  auto config = engine_bench_config();
  config.heavy_hitter.packet_threshold = 10'000;
  config.registry = &registry;
  core::InstaMeasure engine{config};
  auto packets = engine_bench_packets();
  std::size_t i = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    auto& p = packets[++i & kEnginePoolMask];
    p.timestamp_ns = ++now;
    engine.process(p);
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineProcessWithRegistry);

// Fast path with a flight recorder ATTACHED but every kind masked off —
// the hook cost a deployment pays for keeping the recorder armed (one
// branch + one relaxed mask load per instrumented site). The acceptance
// budget is <=3% over BM_EngineProcess; compare the Mpps counters.
void BM_EngineProcessTraced(benchmark::State& state) {
  telemetry::TraceConfig trace_config;
  trace_config.kind_mask = 0;  // armed, sampling nothing
  telemetry::TraceRecorder recorder{trace_config};
  auto config = engine_bench_config();
  config.trace = &recorder;
  core::InstaMeasure engine{config};
  auto packets = engine_bench_packets();
  std::size_t i = 0;
  std::uint64_t now = 0;
  for (auto _ : state) {
    auto& p = packets[++i & kEnginePoolMask];
    p.timestamp_ns = ++now;
    engine.process(p);
  }
  state.counters["Mpps"] = benchmark::Counter(
      static_cast<double>(state.iterations()) / 1e6,
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineProcessTraced);

void BM_CountMinAdd(benchmark::State& state) {
  sketch::CountMinSketch cm{sketch::CountMinConfig{1 << 16, 4, 1}};
  std::uint64_t i = 0;
  for (auto _ : state) cm.add(util::mix64(++i));
  benchmark::DoNotOptimize(cm.total());
}
BENCHMARK(BM_CountMinAdd);

void BM_CsmAdd(benchmark::State& state) {
  sketch::CsmSketch csm{sketch::CsmConfig{1 << 22, 16, 1}};
  std::uint64_t i = 0;
  for (auto _ : state) csm.add(util::mix64(++i));
  benchmark::DoNotOptimize(csm.total());
}
BENCHMARK(BM_CsmAdd);

void BM_CsmDecode(benchmark::State& state) {
  sketch::CsmSketch csm{sketch::CsmConfig{1 << 22, 16, 1}};
  util::SplitMix64 keys{5};
  for (int i = 0; i < 1'000'000; ++i) csm.add(keys());
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(csm.estimate(util::mix64(++i)));
  }
}
BENCHMARK(BM_CsmDecode);

void BM_CounterTreeAdd(benchmark::State& state) {
  sketch::CounterTree tree{sketch::CounterTreeConfig{1 << 20, 4, 8, 1}};
  std::uint64_t i = 0;
  for (auto _ : state) tree.add(util::mix64(++i));
  benchmark::DoNotOptimize(tree.total());
}
BENCHMARK(BM_CounterTreeAdd);

void BM_SpscBurstRoundTrip(benchmark::State& state) {
  runtime::SpscQueue<std::uint64_t> q{1024};
  std::array<std::uint64_t, 32> burst{};
  for (std::size_t i = 0; i < burst.size(); ++i) burst[i] = i;
  for (auto _ : state) {
    benchmark::DoNotOptimize(q.try_push_burst(std::span{burst}));
    benchmark::DoNotOptimize(q.try_pop_burst(std::span{burst}));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_SpscBurstRoundTrip);

// Producer and consumer on separate threads hammering one queue — the
// configuration whose throughput craters (multi-x) if the head/tail index
// fields ever share a cache line. Pairs with the SpscQueueLayout test:
// that asserts the layout, this measures what the layout buys.
void BM_SpscCrossThread(benchmark::State& state) {
  constexpr std::uint64_t kN = 1 << 20;
  for (auto _ : state) {
    runtime::SpscQueue<std::uint64_t> q{1024};
    std::thread producer([&q] {
      std::array<std::uint64_t, 32> burst{};
      std::uint64_t next = 0;
      while (next < kN) {
        const auto m = std::min<std::uint64_t>(burst.size(), kN - next);
        for (std::uint64_t i = 0; i < m; ++i) burst[i] = next + i;
        std::uint64_t pushed = 0;
        while (pushed < m) {
          pushed += q.try_push_burst(std::span{
              burst.data() + pushed, static_cast<std::size_t>(m - pushed)});
        }
        next += m;
      }
    });
    std::array<std::uint64_t, 32> out{};
    std::uint64_t popped = 0, sum = 0;
    while (popped < kN) {
      const auto n = q.try_pop_burst(std::span{out});
      for (std::size_t i = 0; i < n; ++i) sum += out[i];
      popped += n;
    }
    producer.join();
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations() * kN));
}
BENCHMARK(BM_SpscCrossThread)->Unit(benchmark::kMillisecond);

void BM_FrameEncode(benchmark::State& state) {
  const auto key = key_from(0x1234567890ULL);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netio::encode_frame(key, 500));
  }
}
BENCHMARK(BM_FrameEncode);

void BM_FrameDecode(benchmark::State& state) {
  const auto frame = netio::encode_frame(key_from(0xABCDEF), 500);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netio::decode_frame(frame));
  }
}
BENCHMARK(BM_FrameDecode);

}  // namespace

BENCHMARK_MAIN();
