// Shared plumbing for the figure-reproduction benches.
//
// Every bench binary accepts:
//   --scale=<f>   trace scale factor (flow counts), default per bench
//   --seed=<n>    trace seed
// and prints a paper-style table plus a SHAPE-CHECK verdict line so the
// regenerated result can be compared against the paper's claim at a glance
// (see EXPERIMENTS.md for the side-by-side record).
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "analysis/report.h"
#include "telemetry/export.h"
#include "trace/generator.h"
#include "util/cli.h"
#include "util/format.h"

namespace instameasure::bench {

inline void print_header(const char* figure, const char* claim) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", figure);
  std::printf("Paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void print_trace_summary(const trace::Trace& trace) {
  std::printf("workload: %s — %s packets, %.1f s, avg %s, %s\n",
              trace.name.c_str(),
              util::format_count(trace.packets.size()).c_str(),
              trace.duration_s(), util::format_rate(trace.average_pps()).c_str(),
              util::format_bytes(trace.total_bytes()).c_str());
}

inline void shape_check(bool ok, const std::string& what) {
  std::printf("SHAPE-CHECK %s: %s\n", ok ? "PASS" : "FAIL", what.c_str());
}

/// Append the registry's final state as one JSON line, fenced so log
/// scrapers (and EXPERIMENTS.md tooling) can lift the machine-readable
/// record out of the human-readable table above it. No-op when telemetry
/// is compiled out (the stub snapshot is empty).
inline void print_metrics_json(const telemetry::Registry& registry) {
  if (!telemetry::kEnabled) return;
  std::printf("METRICS-JSON %s\n",
              telemetry::to_json(registry.snapshot()).c_str());
}

class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace instameasure::bench
