// §V.C "Comparison": CSM (randomized counter sharing, Li et al. 2011) with
// 60MB — roughly twice InstaMeasure's largest configuration — decodes the
// top-100 at 2.4% and top-1000 at 8.53% average error on a one-MINUTE
// slice, and decoding every flow of the full trace did not terminate.
//
// Reproduction: run both schemes over the same slice, compare banded top-K
// error, and extrapolate CSM's full-population decode cost from a measured
// per-flow decode time.
#include "bench_common.h"

#include <functional>

#include "analysis/ground_truth.h"
#include "core/instameasure.h"
#include "sketch/counter_tree.h"
#include "sketch/csm.h"

using namespace instameasure;

namespace {

double mean_topk_error(const analysis::GroundTruth& truth, std::size_t k,
                       const std::function<double(const netio::FlowKey&)>& est) {
  const auto keys = truth.top_k_keys(k, false);
  double sum = 0;
  for (const auto& key : keys) {
    const double t = static_cast<double>(truth.find(key)->packets);
    sum += std::abs(est(key) - t) / t;
  }
  return keys.empty() ? 0.0 : sum / static_cast<double>(keys.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::CliArgs args{argc, argv};
  const double scale = args.get_double("scale", 0.1);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  bench::print_header(
      "Table (§V.C) — CSM comparison",
      "CSM with 2x InstaMeasure's memory: 2.4% top-100 / 8.53% top-1000 "
      "error; whole-trace decode infeasible. InstaMeasure decodes online.");

  const auto trace = trace::generate(trace::caida_like_config(scale, seed));
  bench::print_trace_summary(trace);
  const analysis::GroundTruth truth{trace};

  // InstaMeasure with its largest paper configuration (2048KB sketch).
  core::EngineConfig im_config;
  im_config.regulator.l1_memory_bytes = 512 * 1024;
  im_config.wsaf.log2_entries = 20;
  core::InstaMeasure engine{im_config};
  bench::WallTimer im_timer;
  for (const auto& rec : trace.packets) engine.process(rec);
  const double im_encode_s = im_timer.seconds();

  // CSM with ~60MB (15M counters x 4B). The paper chose a per-flow vector
  // of 10,000 counters "large enough to count the maximum flow size" — that
  // choice is what makes CSM noisy (noise ~ l*N/m) and its decode heavy
  // (10,000 counter reads per flow).
  sketch::CsmConfig csm_config;
  csm_config.pool_counters = 15'000'000;
  csm_config.per_flow = 10'000;
  csm_config.seed = seed;
  sketch::CsmSketch csm{csm_config};
  bench::WallTimer csm_timer;
  for (const auto& rec : trace.packets) csm.add(rec.key.hash());
  const double csm_encode_s = csm_timer.seconds();

  // Counter Tree (the paper's cited prior multi-layer sketch [20]) at a
  // comparable footprint: also offline decode, but layered carry instead of
  // random counter sharing.
  sketch::CounterTreeConfig tree_config;
  tree_config.leaves = 1 << 18;  // 128KB leaves + 128KB parents (logical)
  tree_config.leaf_bits = 4;
  tree_config.degree = 8;
  sketch::CounterTree tree{tree_config};
  bench::WallTimer tree_timer;
  for (const auto& rec : trace.packets) tree.add(rec.key.hash());
  const double tree_encode_s = tree_timer.seconds();

  const auto im_est = [&](const netio::FlowKey& key) {
    return engine.query(key).packets;
  };
  const auto csm_est = [&](const netio::FlowKey& key) {
    return csm.estimate(key.hash());
  };
  const auto tree_est = [&](const netio::FlowKey& key) {
    return tree.estimate(key.hash());
  };

  analysis::Table table{{"scheme", "memory", "top-100 err", "top-1000 err",
                         "encode (s)"}};
  const double im_100 = mean_topk_error(truth, 100, im_est);
  const double im_1000 = mean_topk_error(truth, 1000, im_est);
  const double csm_100 = mean_topk_error(truth, 100, csm_est);
  const double csm_1000 = mean_topk_error(truth, 1000, csm_est);
  table.add_row({"InstaMeasure", util::format_bytes(engine.memory_bytes()),
                 analysis::cell("%.2f%%", 100 * im_100),
                 analysis::cell("%.2f%%", 100 * im_1000),
                 analysis::cell("%.2f", im_encode_s)});
  table.add_row({"CSM", util::format_bytes(csm.memory_bytes()),
                 analysis::cell("%.2f%%", 100 * csm_100),
                 analysis::cell("%.2f%%", 100 * csm_1000),
                 analysis::cell("%.2f", csm_encode_s)});
  const double tree_100 = mean_topk_error(truth, 100, tree_est);
  const double tree_1000 = mean_topk_error(truth, 1000, tree_est);
  table.add_row({"CounterTree", util::format_bytes(tree.memory_bytes()),
                 analysis::cell("%.2f%%", 100 * tree_100),
                 analysis::cell("%.2f%%", 100 * tree_1000),
                 analysis::cell("%.2f", tree_encode_s)});
  table.print();

  // Decode-cost asymmetry: CSM must decode per flow offline (and needs the
  // final total); InstaMeasure's counts are already in the WSAF.
  bench::WallTimer decode_timer;
  constexpr std::size_t kProbe = 2'000;
  double sink = 0;
  std::size_t probed = 0;
  for (const auto& [key, t] : truth.flows()) {
    sink += csm.estimate(key.hash());
    if (++probed >= kProbe) break;
  }
  const double per_flow_us = decode_timer.seconds() * 1e6 / kProbe;
  std::printf(
      "\nCSM decode: %.2f us/flow (sink=%.0f) -> full 78M-flow CAIDA "
      "population would need ~%.1f hours of pure decode, repeated every "
      "query epoch — the paper's non-termination\n",
      per_flow_us, sink, per_flow_us * 78e6 / 3600e6);
  std::printf("InstaMeasure decode: O(1) per flow at query time (WSAF "
              "lookup + residual), no global total required\n");
  std::printf("note: CSM and CounterTree store no flow IDs — decoding "
              "needs an externally-supplied key universe on top of the "
              "offline pass; the WSAF holds IDs and counts together.\n");

  bench::shape_check(im_100 < csm_100 && im_1000 < csm_1000,
                     "InstaMeasure beats CSM on top-100 and top-1000 error");
  bench::shape_check(csm_1000 > 2 * csm_100,
                     "CSM error grows sharply with K (paper: 2.4% -> 8.53%)");
  // At bench scale the top-1000 boundary sits on few-hundred-packet flows,
  // so InstaMeasure's relative error there is a few % (paper's boundary
  // flows are far larger); the ordering vs CSM is the reproducible shape.
  bench::shape_check(im_1000 < 0.08, "InstaMeasure top-1000 error stays low");
  return 0;
}
